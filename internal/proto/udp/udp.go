// Package udp implements UDP datagram encoding/decoding. Smart-home
// devices in the simulated testbed (Lifx-style bulbs, discovery
// protocols) communicate over UDP on the local network.
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned for datagrams shorter than the UDP header.
var ErrTruncated = errors.New("udp: truncated datagram")

// Datagram is a decoded UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// LayerName implements packet.Layer.
func (d *Datagram) LayerName() string { return "udp" }

// String renders a compact human-readable form.
func (d *Datagram) String() string {
	return fmt.Sprintf("udp %d->%d len=%d", d.SrcPort, d.DstPort, len(d.Payload))
}

// Encode serialises the datagram. The checksum is left zero (legal for
// IPv4 UDP) to keep encodings address-independent.
func (d *Datagram) Encode() []byte {
	buf := make([]byte, 8+len(d.Payload))
	binary.BigEndian.PutUint16(buf[0:2], d.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], d.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(8+len(d.Payload)))
	copy(buf[8:], d.Payload)
	return buf
}

// Decode parses a UDP datagram.
func Decode(b []byte) (*Datagram, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < 8 || length > len(b) {
		return nil, ErrTruncated
	}
	d := &Datagram{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
	}
	if length > 8 {
		d.Payload = b[8:length]
	}
	return d, nil
}
