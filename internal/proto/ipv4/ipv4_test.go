package ipv4

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestRoundTrip(t *testing.T) {
	h := &Header{
		TOS:      0,
		ID:       777,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      addr("192.168.1.10"),
		Dst:      addr("34.1.2.3"),
		Payload:  []byte("segment"),
	}
	got, err := Decode(h.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 || got.Protocol != ProtoTCP || got.ID != 777 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, h.Payload) {
		t.Error("payload mismatch")
	}
}

func TestChecksumRejection(t *testing.T) {
	h := &Header{TTL: 64, Protocol: ProtoUDP, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	raw := h.Encode()
	raw[8] ^= 0xff // corrupt TTL without fixing checksum
	if _, err := Decode(raw); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("version: %v", err)
	}
	// Total length larger than buffer.
	h := &Header{TTL: 1, Protocol: 1, Src: addr("1.1.1.1"), Dst: addr("2.2.2.2"), Payload: []byte("xxxx")}
	raw := h.Encode()
	if _, err := Decode(raw[:22]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated payload: %v", err)
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Classic example from RFC 1071 materials.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd-length input exercises the trailing-byte path.
	if got := Checksum([]byte{0x01}); got != ^uint16(0x0100) {
		t.Errorf("odd Checksum = %#04x", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(id uint16, ttl uint8, a, b [4]byte, payload []byte) bool {
		h := &Header{
			ID: id, TTL: ttl, Protocol: ProtoUDP,
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			Payload: payload,
		}
		got, err := Decode(h.Encode())
		if err != nil {
			return false
		}
		return got.ID == id && got.TTL == ttl && got.Src == h.Src &&
			got.Dst == h.Dst && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
