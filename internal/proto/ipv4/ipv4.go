// Package ipv4 implements IPv4 header encoding/decoding with the
// standard internet checksum, as used by the WiFi-side traffic Kalis
// monitors (smart-home devices talking to their cloud services).
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers used by the simulated device traffic.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("ipv4: truncated packet")
	ErrVersion   = errors.New("ipv4: not an IPv4 packet")
	ErrChecksum  = errors.New("ipv4: header checksum mismatch")
)

// Header is a decoded IPv4 header (without options).
type Header struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	Payload  []byte
}

// LayerName implements packet.Layer.
func (h *Header) LayerName() string { return "ipv4" }

// String renders a compact human-readable form.
func (h *Header) String() string {
	return fmt.Sprintf("ipv4 %s -> %s proto=%d ttl=%d", h.Src, h.Dst, h.Protocol, h.TTL)
}

// Encode serialises the header and payload, computing the checksum.
func (h *Header) Encode() []byte {
	total := 20 + len(h.Payload)
	buf := make([]byte, total)
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(total))
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	binary.BigEndian.PutUint16(buf[10:12], Checksum(buf[:20]))
	copy(buf[20:], h.Payload)
	return buf
}

// Decode parses an IPv4 packet and verifies the header checksum.
func Decode(b []byte) (*Header, error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return nil, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total > len(b) {
		return nil, ErrTruncated
	}
	h := &Header{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	h.Payload = b[ihl:total]
	return h, nil
}

// Checksum computes the RFC 1071 internet checksum over b. When b
// already contains a checksum field the result is 0 iff it verifies.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
