package ctp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripData(t *testing.T) {
	d := &Data{
		Pull:      true,
		THL:       3,
		ETX:       120,
		Origin:    5,
		SeqNo:     200,
		CollectID: 1,
		Payload:   []byte{0x11, 0x22},
	}
	got, err := Decode(d.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	gd, ok := got.(*Data)
	if !ok {
		t.Fatalf("decoded %T, want *Data", got)
	}
	if gd.THL != 3 || gd.ETX != 120 || gd.Origin != 5 || gd.SeqNo != 200 || !gd.Pull {
		t.Errorf("data mismatch: %+v", gd)
	}
	if !bytes.Equal(gd.Payload, d.Payload) {
		t.Error("payload mismatch")
	}
}

func TestRoundTripBeacon(t *testing.T) {
	b := &Beacon{Congestion: true, Parent: 2, ETX: 30}
	got, err := Decode(b.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	gb, ok := got.(*Beacon)
	if !ok {
		t.Fatalf("decoded %T, want *Beacon", got)
	}
	if gb.Parent != 2 || gb.ETX != 30 || !gb.Congestion || gb.Pull {
		t.Errorf("beacon mismatch: %+v", gb)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode([]byte{0x99}); !errors.Is(err, ErrBadType) {
		t.Errorf("bad AM: %v", err)
	}
	if _, err := Decode([]byte{0x71, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short data: %v", err)
	}
	if _, err := Decode([]byte{0x70, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short beacon: %v", err)
	}
}

func TestIsCTP(t *testing.T) {
	if !IsCTP((&Data{}).Encode()) || !IsCTP((&Beacon{}).Encode()) {
		t.Error("IsCTP false for CTP frames")
	}
	if IsCTP(nil) || IsCTP([]byte{0x00}) {
		t.Error("IsCTP true for non-CTP bytes")
	}
}

func TestStrings(t *testing.T) {
	d := &Data{Origin: 4, SeqNo: 2, THL: 1, ETX: 10}
	if d.String() != "ctp-data origin=4 seq=2 thl=1 etx=10" {
		t.Errorf("Data.String() = %q", d.String())
	}
	b := &Beacon{Parent: 7, ETX: 55}
	if b.String() != "ctp-beacon parent=7 etx=55" {
		t.Errorf("Beacon.String() = %q", b.String())
	}
	if d.LayerName() != "ctp-data" || b.LayerName() != "ctp-beacon" {
		t.Error("layer names")
	}
}

func TestQuickDataRoundTrip(t *testing.T) {
	prop := func(thl uint8, etx, origin uint16, seq uint8, payload []byte) bool {
		d := &Data{THL: thl, ETX: etx, Origin: origin, SeqNo: seq, CollectID: 1, Payload: payload}
		got, err := Decode(d.Encode())
		if err != nil {
			return false
		}
		gd, ok := got.(*Data)
		return ok && gd.THL == thl && gd.ETX == etx && gd.Origin == origin &&
			gd.SeqNo == seq && bytes.Equal(gd.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
