// Package ctp implements the TinyOS Collection Tree Protocol frame
// formats (data frames and routing beacons) as specified in TEP 123.
//
// CTP is the protocol the paper's 6-node TelosB WSN runs: every mote
// sends a data message every 3 seconds towards the base station, and
// the presence of CTP frames (with their THL hop counter and origin
// field) is one of the signals the Topology Discovery sensing module
// uses to recognise a multi-hop network.
package ctp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame type dispatch bytes, mirroring the TinyOS AM types used for CTP.
const (
	amData   = 0x71
	amBeacon = 0x70
)

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("ctp: truncated frame")
	ErrBadType   = errors.New("ctp: not a CTP frame")
)

// Data is a CTP data frame (TEP 123 §3.1).
type Data struct {
	// Pull indicates the P (routing pull) bit.
	Pull bool
	// Congestion indicates the C bit.
	Congestion bool
	// THL is the time-has-lived hop counter, incremented at every hop.
	// Observing the same (Origin, SeqNo) with increasing THL values is
	// direct evidence of multi-hop forwarding.
	THL uint8
	// ETX is the sender's route cost estimate.
	ETX uint16
	// Origin is the node that originated the packet.
	Origin uint16
	// SeqNo is the origin's sequence number.
	SeqNo uint8
	// CollectID identifies the collection service instance.
	CollectID uint8
	// Payload is the application payload.
	Payload []byte
}

// LayerName implements packet.Layer.
func (d *Data) LayerName() string { return "ctp-data" }

// String renders a compact human-readable form.
func (d *Data) String() string {
	return fmt.Sprintf("ctp-data origin=%d seq=%d thl=%d etx=%d", d.Origin, d.SeqNo, d.THL, d.ETX)
}

// Encode serialises the data frame with its AM dispatch byte.
func (d *Data) Encode() []byte {
	buf := make([]byte, 9, 9+len(d.Payload))
	buf[0] = amData
	var opts uint8
	if d.Pull {
		opts |= 0x80
	}
	if d.Congestion {
		opts |= 0x40
	}
	buf[1] = opts
	buf[2] = d.THL
	binary.BigEndian.PutUint16(buf[3:5], d.ETX)
	binary.BigEndian.PutUint16(buf[5:7], d.Origin)
	buf[7] = d.SeqNo
	buf[8] = d.CollectID
	return append(buf, d.Payload...)
}

// Beacon is a CTP routing beacon (TEP 123 §3.2). Beacons advertise the
// sender's parent and route cost, and are broadcast periodically.
type Beacon struct {
	Pull       bool
	Congestion bool
	// Parent is the sender's current parent in the collection tree.
	Parent uint16
	// ETX is the sender's advertised route cost. A node advertising an
	// implausibly low ETX is the classic sinkhole-attack symptom.
	ETX uint16
}

// LayerName implements packet.Layer.
func (b *Beacon) LayerName() string { return "ctp-beacon" }

// String renders a compact human-readable form.
func (b *Beacon) String() string {
	return fmt.Sprintf("ctp-beacon parent=%d etx=%d", b.Parent, b.ETX)
}

// Encode serialises the beacon with its AM dispatch byte.
func (b *Beacon) Encode() []byte {
	buf := make([]byte, 6)
	buf[0] = amBeacon
	var opts uint8
	if b.Pull {
		opts |= 0x80
	}
	if b.Congestion {
		opts |= 0x40
	}
	buf[1] = opts
	binary.BigEndian.PutUint16(buf[2:4], b.Parent)
	binary.BigEndian.PutUint16(buf[4:6], b.ETX)
	return buf
}

// Decode parses a CTP frame (data or beacon) from an 802.15.4 payload.
// It returns either *Data or *Beacon.
func Decode(b []byte) (interface{}, error) {
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	switch b[0] {
	case amData:
		if len(b) < 9 {
			return nil, ErrTruncated
		}
		d := &Data{
			Pull:       b[1]&0x80 != 0,
			Congestion: b[1]&0x40 != 0,
			THL:        b[2],
			ETX:        binary.BigEndian.Uint16(b[3:5]),
			Origin:     binary.BigEndian.Uint16(b[5:7]),
			SeqNo:      b[7],
			CollectID:  b[8],
		}
		if len(b) > 9 {
			d.Payload = b[9:]
		}
		return d, nil
	case amBeacon:
		if len(b) < 6 {
			return nil, ErrTruncated
		}
		return &Beacon{
			Pull:       b[1]&0x80 != 0,
			Congestion: b[1]&0x40 != 0,
			Parent:     binary.BigEndian.Uint16(b[2:4]),
			ETX:        binary.BigEndian.Uint16(b[4:6]),
		}, nil
	default:
		return nil, ErrBadType
	}
}

// IsCTP reports whether the payload looks like a CTP frame.
func IsCTP(b []byte) bool {
	return len(b) > 0 && (b[0] == amData || b[0] == amBeacon)
}
