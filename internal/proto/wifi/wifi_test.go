package wifi

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripData(t *testing.T) {
	f := &Frame{
		Type:    TypeData,
		ToDS:    true,
		Addr1:   MAC{1, 2, 3, 4, 5, 6},
		Addr2:   MAC{7, 8, 9, 10, 11, 12},
		Addr3:   MAC{13, 14, 15, 16, 17, 18},
		Seq:     123,
		Payload: []byte("ip packet"),
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != TypeData || !got.ToDS || got.FromDS {
		t.Errorf("control mismatch: %+v", got)
	}
	if got.Addr1 != f.Addr1 || got.Addr2 != f.Addr2 || got.Addr3 != f.Addr3 {
		t.Error("address mismatch")
	}
	if got.Seq != 123 {
		t.Errorf("seq = %d", got.Seq)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Error("payload mismatch")
	}
}

func TestRoundTripMgmt(t *testing.T) {
	f := &Frame{Type: TypeManagement, Subtype: SubtypeBeacon, Addr1: BroadcastMAC, Addr2: MAC{1, 1, 1, 1, 1, 1}}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != TypeManagement || got.Subtype != SubtypeBeacon {
		t.Errorf("mgmt mismatch: %+v", got)
	}
	if got.Addr1 != BroadcastMAC {
		t.Error("broadcast address lost")
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := Decode(make([]byte, 23)); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22}
	if m.String() != "aa:bb:cc:00:11:22" {
		t.Errorf("MAC.String() = %q", m.String())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(a1, a2, a3 [6]byte, seq uint16, payload []byte) bool {
		seq &= 0x0fff // 12-bit sequence field
		f := &Frame{Type: TypeData, Addr1: MAC(a1), Addr2: MAC(a2), Addr3: MAC(a3), Seq: seq, Payload: payload}
		got, err := Decode(f.Encode())
		if err != nil {
			return false
		}
		return got.Addr1 == f.Addr1 && got.Addr2 == f.Addr2 &&
			got.Addr3 == f.Addr3 && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
