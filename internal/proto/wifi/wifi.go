// Package wifi implements a simplified IEEE 802.11 MAC framing for the
// WiFi medium: data frames carrying IP packets between stations and
// the access point, plus the management frames (beacon, association)
// that appear in smart-home traffic. The framing is a faithful subset
// of 802.11 (frame control, addresses, sequence) sufficient for a
// passive monitor; radiotap-style capture metadata (RSSI) travels in
// the packet envelope, not in the frame.
package wifi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType is the 802.11 type field.
type FrameType uint8

// 802.11 frame types.
const (
	TypeManagement FrameType = 0
	TypeControl    FrameType = 1
	TypeData       FrameType = 2
)

// Management subtypes used by the simulated devices.
const (
	SubtypeAssocReq  uint8 = 0
	SubtypeAssocResp uint8 = 1
	SubtypeProbeReq  uint8 = 4
	SubtypeBeacon    uint8 = 8
	SubtypeAuth      uint8 = 11
	SubtypeDeauth    uint8 = 12
)

// MAC is a 48-bit hardware address.
type MAC [6]byte

// String renders the address in colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Errors returned by Decode.
var ErrTruncated = errors.New("wifi: truncated frame")

// Frame is a decoded (simplified) 802.11 frame.
type Frame struct {
	Type    FrameType
	Subtype uint8
	ToDS    bool
	FromDS  bool
	// Addr1..Addr3 follow 802.11 semantics (receiver, transmitter,
	// BSSID/source depending on DS bits).
	Addr1, Addr2, Addr3 MAC
	Seq                 uint16
	Payload             []byte
}

// LayerName implements packet.Layer.
func (f *Frame) LayerName() string { return "wifi" }

// String renders a compact human-readable form.
func (f *Frame) String() string {
	return fmt.Sprintf("wifi type=%d subtype=%d %s -> %s", f.Type, f.Subtype, f.Addr2, f.Addr1)
}

// Encode serialises the frame.
func (f *Frame) Encode() []byte {
	buf := make([]byte, 24, 24+len(f.Payload))
	var fc uint16
	fc |= uint16(f.Type&0x3) << 2
	fc |= uint16(f.Subtype&0xf) << 4
	if f.ToDS {
		fc |= 1 << 8
	}
	if f.FromDS {
		fc |= 1 << 9
	}
	binary.LittleEndian.PutUint16(buf[0:2], fc)
	copy(buf[4:10], f.Addr1[:])
	copy(buf[10:16], f.Addr2[:])
	copy(buf[16:22], f.Addr3[:])
	binary.LittleEndian.PutUint16(buf[22:24], f.Seq<<4)
	return append(buf, f.Payload...)
}

// Decode parses a simplified 802.11 frame.
func Decode(b []byte) (*Frame, error) {
	if len(b) < 24 {
		return nil, ErrTruncated
	}
	fc := binary.LittleEndian.Uint16(b[0:2])
	f := &Frame{
		Type:    FrameType((fc >> 2) & 0x3),
		Subtype: uint8((fc >> 4) & 0xf),
		ToDS:    fc&(1<<8) != 0,
		FromDS:  fc&(1<<9) != 0,
		Seq:     binary.LittleEndian.Uint16(b[22:24]) >> 4,
	}
	copy(f.Addr1[:], b[4:10])
	copy(f.Addr2[:], b[10:16])
	copy(f.Addr3[:], b[16:22])
	if len(b) > 24 {
		f.Payload = b[24:]
	}
	return f, nil
}
