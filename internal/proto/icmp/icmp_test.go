package icmp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	m := &Message{Type: TypeEchoRequest, ID: 77, Seq: 3, Payload: []byte("ping-data")}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != TypeEchoRequest || got.ID != 77 || got.Seq != 3 {
		t.Errorf("mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Error("payload mismatch")
	}
	if !got.IsEchoRequest() || got.IsEchoReply() {
		t.Error("type predicates")
	}
}

func TestReplyPredicate(t *testing.T) {
	m := &Message{Type: TypeEchoReply}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsEchoReply() || got.IsEchoRequest() {
		t.Error("reply predicates")
	}
}

func TestChecksumRejection(t *testing.T) {
	raw := (&Message{Type: TypeEchoRequest, ID: 1}).Encode()
	raw[5] ^= 0xff
	if _, err := Decode(raw); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestTruncated(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(id, seq uint16, payload []byte) bool {
		m := &Message{Type: TypeEchoReply, ID: id, Seq: seq, Payload: payload}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return got.ID == id && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
