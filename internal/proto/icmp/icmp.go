// Package icmp implements ICMP echo request/reply messages: the raw
// material of the ICMP Flood and Smurf attacks at the heart of the
// paper's working example (§III-A1) and first evaluation scenario.
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"kalis/internal/proto/ipv4"
)

// Message types.
const (
	TypeEchoReply   uint8 = 0
	TypeEchoRequest uint8 = 8
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("icmp: truncated message")
	ErrChecksum  = errors.New("icmp: checksum mismatch")
)

// Message is a decoded ICMP message.
type Message struct {
	Type, Code uint8
	ID, Seq    uint16
	Payload    []byte
}

// LayerName implements packet.Layer.
func (m *Message) LayerName() string { return "icmp" }

// String renders a compact human-readable form.
func (m *Message) String() string {
	return fmt.Sprintf("icmp type=%d code=%d id=%d seq=%d", m.Type, m.Code, m.ID, m.Seq)
}

// IsEchoRequest reports whether the message is an echo request.
func (m *Message) IsEchoRequest() bool { return m.Type == TypeEchoRequest }

// IsEchoReply reports whether the message is an echo reply.
func (m *Message) IsEchoReply() bool { return m.Type == TypeEchoReply }

// Encode serialises the message, computing the checksum.
func (m *Message) Encode() []byte {
	buf := make([]byte, 8+len(m.Payload))
	buf[0] = m.Type
	buf[1] = m.Code
	binary.BigEndian.PutUint16(buf[4:6], m.ID)
	binary.BigEndian.PutUint16(buf[6:8], m.Seq)
	copy(buf[8:], m.Payload)
	binary.BigEndian.PutUint16(buf[2:4], ipv4.Checksum(buf))
	return buf
}

// Decode parses an ICMP message and verifies its checksum.
func Decode(b []byte) (*Message, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	if ipv4.Checksum(b) != 0 {
		return nil, ErrChecksum
	}
	m := &Message{
		Type: b[0],
		Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:6]),
		Seq:  binary.BigEndian.Uint16(b[6:8]),
	}
	if len(b) > 8 {
		m.Payload = b[8:]
	}
	return m, nil
}
