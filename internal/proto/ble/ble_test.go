package ble

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripAdv(t *testing.T) {
	p := &PDU{Type: PDUAdvInd, Adv: Address{1, 2, 3, 4, 5, 6}, Payload: []byte("august-lock")}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != PDUAdvInd || got.Adv != p.Adv || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("mismatch: %+v", got)
	}
	if !got.IsAdvertising() {
		t.Error("IsAdvertising false")
	}
}

func TestRoundTripData(t *testing.T) {
	p := &PDU{Type: PDUData, Adv: Address{9, 9, 9, 9, 9, 9}, Payload: []byte{0xff}}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.IsAdvertising() {
		t.Error("data PDU reported as advertising")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	p := &PDU{Type: PDUAdvInd, Payload: []byte("abc")}
	raw := p.Encode()
	if _, err := Decode(raw[:9]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: %v", err)
	}
}

func TestAddressString(t *testing.T) {
	a := Address{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if a.String() != "de:ad:be:ef:00:01" {
		t.Errorf("Address.String() = %q", a.String())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(adv [6]byte, payload []byte) bool {
		if len(payload) > 255 {
			payload = payload[:255]
		}
		p := &PDU{Type: PDUAdvNonConn, Adv: Address(adv), Payload: payload}
		got, err := Decode(p.Encode())
		if err != nil {
			return false
		}
		return got.Adv == p.Adv && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
