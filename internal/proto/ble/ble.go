// Package ble implements a simplified Bluetooth Low Energy link layer:
// advertising PDUs (the beacons an August-style smart lock broadcasts)
// and data PDUs carrying opaque encrypted ATT traffic. Kalis overhears
// these on its Bluetooth capture interface; payloads are opaque, but
// advertising cadence and RSSI are observable.
package ble

import (
	"errors"
	"fmt"
)

// PDUType is the BLE PDU type.
type PDUType uint8

// PDU types used by the simulated devices.
const (
	PDUAdvInd     PDUType = 0x0 // connectable undirected advertising
	PDUAdvNonConn PDUType = 0x2 // non-connectable advertising
	PDUScanReq    PDUType = 0x3
	PDUScanRsp    PDUType = 0x4
	PDUConnectReq PDUType = 0x5
	PDUData       PDUType = 0xf // (simplified) data channel PDU
)

// Address is a 48-bit BLE device address.
type Address [6]byte

// String renders the address in colon-hex form.
func (a Address) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// ErrTruncated is returned for PDUs shorter than the header.
var ErrTruncated = errors.New("ble: truncated PDU")

// PDU is a decoded (simplified) BLE PDU.
type PDU struct {
	Type    PDUType
	Adv     Address
	Payload []byte
}

// LayerName implements packet.Layer.
func (p *PDU) LayerName() string { return "ble" }

// String renders a compact human-readable form.
func (p *PDU) String() string {
	return fmt.Sprintf("ble pdu=0x%x adv=%s len=%d", uint8(p.Type), p.Adv, len(p.Payload))
}

// IsAdvertising reports whether the PDU is advertising-channel traffic.
func (p *PDU) IsAdvertising() bool { return p.Type != PDUData }

// Encode serialises the PDU.
func (p *PDU) Encode() []byte {
	buf := make([]byte, 8, 8+len(p.Payload))
	buf[0] = uint8(p.Type)
	buf[1] = uint8(len(p.Payload))
	copy(buf[2:8], p.Adv[:])
	return append(buf, p.Payload...)
}

// Decode parses a simplified BLE PDU.
func Decode(b []byte) (*PDU, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	n := int(b[1])
	if len(b) < 8+n {
		return nil, ErrTruncated
	}
	p := &PDU{Type: PDUType(b[0])}
	copy(p.Adv[:], b[2:8])
	if n > 0 {
		p.Payload = b[8 : 8+n]
	}
	return p, nil
}
