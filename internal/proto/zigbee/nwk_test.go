package zigbee

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripData(t *testing.T) {
	f := &Frame{
		Type:     FrameData,
		Protocol: 2,
		Dst:      0x0001,
		Src:      0x0042,
		Radius:   30,
		Seq:      17,
		Payload:  []byte("zigbee app data"),
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Type != FrameData || got.Dst != 1 || got.Src != 0x42 || got.Radius != 30 || got.Seq != 17 {
		t.Errorf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("payload mismatch")
	}
	if got.IsRouting() {
		t.Error("data frame reported as routing")
	}
}

func TestRoundTripCommand(t *testing.T) {
	f := &Frame{
		Type:     FrameCommand,
		Protocol: 2,
		Dst:      0xfffc,
		Src:      0x0007,
		Radius:   1,
		Seq:      3,
		Command:  CmdRouteRequest,
		Payload:  []byte{0x01, 0x02},
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.IsRouting() || got.Command != CmdRouteRequest {
		t.Errorf("command mismatch: %+v", got)
	}
}

func TestRoundTripSourceRoute(t *testing.T) {
	f := &Frame{
		Type:        FrameData,
		Protocol:    2,
		SourceRoute: true,
		Dst:         0x0001,
		Src:         0x0099,
		Radius:      10,
		Seq:         8,
		Relays:      []uint16{0x0002, 0x0003, 0x0004},
		Payload:     []byte{0xaa},
	}
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.SourceRoute || len(got.Relays) != 3 || got.Relays[1] != 3 {
		t.Errorf("source route mismatch: %+v", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	for n := 0; n < 8; n++ {
		if _, err := Decode(make([]byte, n)); !errors.Is(err, ErrTruncated) {
			t.Errorf("len %d: err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestTruncatedSourceRoute(t *testing.T) {
	f := &Frame{Type: FrameData, SourceRoute: true, Relays: []uint16{1, 2, 3}}
	raw := f.Encode()
	if _, err := Decode(raw[:len(raw)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestCommandStrings(t *testing.T) {
	if CmdRouteRequest.String() != "route-request" {
		t.Errorf("CmdRouteRequest = %q", CmdRouteRequest.String())
	}
	if CommandID(0xEE).String() != "command(0xee)" {
		t.Errorf("unknown = %q", CommandID(0xEE).String())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(dst, src uint16, radius, seq uint8, payload []byte) bool {
		f := &Frame{Type: FrameData, Protocol: 2, Dst: dst, Src: src, Radius: radius, Seq: seq, Payload: payload}
		got, err := Decode(f.Encode())
		if err != nil {
			return false
		}
		return got.Dst == dst && got.Src == src && got.Radius == radius &&
			got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
