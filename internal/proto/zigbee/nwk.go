// Package zigbee implements a decoder/encoder for the ZigBee network
// (NWK) layer carried in IEEE 802.15.4 data frames: data frames with
// source routing information and the routing command frames (route
// request/reply, network status) that Kalis' Topology Discovery module
// inspects to tell multi-hop from single-hop networks.
package zigbee

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType is the NWK-level frame type.
type FrameType uint8

// NWK frame types.
const (
	FrameData    FrameType = 0
	FrameCommand FrameType = 1
)

// CommandID identifies a NWK routing command.
type CommandID uint8

// NWK command identifiers (ZigBee spec §3.4).
const (
	CmdRouteRequest  CommandID = 0x01
	CmdRouteReply    CommandID = 0x02
	CmdNetworkStatus CommandID = 0x03
	CmdLeave         CommandID = 0x04
	CmdRouteRecord   CommandID = 0x05
	CmdRejoinRequest CommandID = 0x06
	CmdLinkStatus    CommandID = 0x08
)

// String returns the command name.
func (c CommandID) String() string {
	switch c {
	case CmdRouteRequest:
		return "route-request"
	case CmdRouteReply:
		return "route-reply"
	case CmdNetworkStatus:
		return "network-status"
	case CmdLeave:
		return "leave"
	case CmdRouteRecord:
		return "route-record"
	case CmdRejoinRequest:
		return "rejoin-request"
	case CmdLinkStatus:
		return "link-status"
	default:
		return fmt.Sprintf("command(0x%02x)", uint8(c))
	}
}

// Errors returned by Decode.
var ErrTruncated = errors.New("zigbee: truncated NWK frame")

// Frame is a decoded ZigBee NWK frame.
type Frame struct {
	Type     FrameType
	Protocol uint8 // protocol version (ZigBee PRO = 2)
	// Discovery is the route-discovery sub-field (0..3).
	Discovery uint8
	// SourceRoute indicates the presence of a source routing subframe,
	// a forwarding header that reveals multi-hop operation.
	SourceRoute bool
	Dst, Src    uint16
	Radius      uint8
	Seq         uint8
	// Relays is the source-route relay list, present iff SourceRoute.
	Relays []uint16
	// Command is the routing command ID for FrameCommand frames.
	Command CommandID
	Payload []byte
}

// LayerName implements packet.Layer.
func (f *Frame) LayerName() string { return "zigbee" }

// IsRouting reports whether the frame is network-management/routing
// traffic rather than application data.
func (f *Frame) IsRouting() bool { return f.Type == FrameCommand }

// Encode serialises the NWK frame.
func (f *Frame) Encode() []byte {
	fcf := uint16(f.Type&0x3) | uint16(f.Protocol&0xf)<<2 | uint16(f.Discovery&0x3)<<6
	if f.SourceRoute {
		fcf |= 1 << 10
	}
	buf := make([]byte, 0, 16+2*len(f.Relays)+len(f.Payload))
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], fcf)
	buf = append(buf, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], f.Dst)
	buf = append(buf, u16[:]...)
	binary.LittleEndian.PutUint16(u16[:], f.Src)
	buf = append(buf, u16[:]...)
	buf = append(buf, f.Radius, f.Seq)
	if f.SourceRoute {
		buf = append(buf, uint8(len(f.Relays)), 0)
		for _, r := range f.Relays {
			binary.LittleEndian.PutUint16(u16[:], r)
			buf = append(buf, u16[:]...)
		}
	}
	if f.Type == FrameCommand {
		buf = append(buf, uint8(f.Command))
	}
	return append(buf, f.Payload...)
}

// Decode parses a ZigBee NWK frame from an 802.15.4 payload.
func Decode(b []byte) (*Frame, error) {
	if len(b) < 8 {
		return nil, ErrTruncated
	}
	fcf := binary.LittleEndian.Uint16(b[0:2])
	f := &Frame{
		Type:        FrameType(fcf & 0x3),
		Protocol:    uint8((fcf >> 2) & 0xf),
		Discovery:   uint8((fcf >> 6) & 0x3),
		SourceRoute: fcf&(1<<10) != 0,
		Dst:         binary.LittleEndian.Uint16(b[2:4]),
		Src:         binary.LittleEndian.Uint16(b[4:6]),
		Radius:      b[6],
		Seq:         b[7],
	}
	rest := b[8:]
	if f.SourceRoute {
		if len(rest) < 2 {
			return nil, ErrTruncated
		}
		n := int(rest[0])
		rest = rest[2:]
		if len(rest) < 2*n {
			return nil, ErrTruncated
		}
		f.Relays = make([]uint16, n)
		for i := 0; i < n; i++ {
			f.Relays[i] = binary.LittleEndian.Uint16(rest[2*i:])
		}
		rest = rest[2*n:]
	}
	if f.Type == FrameCommand {
		if len(rest) < 1 {
			return nil, ErrTruncated
		}
		f.Command = CommandID(rest[0])
		rest = rest[1:]
	}
	f.Payload = rest
	return f, nil
}
