package lint

import (
	"go/ast"
)

// BusTopic keeps event-bus topic names bounded: Bus.Publish and
// Bus.Subscribe must be called with a named topic constant (such as
// event.TopicPacket), never a string literal. Topics become telemetry
// label values (kalis_bus_publishes_total{topic=...}); ad-hoc literals
// would silently grow label cardinality and drift from the documented
// topic set.
type BusTopic struct {
	Scope ScopeFunc
}

// busMethods are the event.Bus methods whose first argument is a topic.
var busMethods = map[string]bool{
	"(*kalis/internal/core/event.Bus).Publish":   true,
	"(*kalis/internal/core/event.Bus).Subscribe": true,
}

// Name implements Analyzer.
func (*BusTopic) Name() string { return "bustopic" }

// Doc implements Analyzer.
func (*BusTopic) Doc() string {
	return "event.Bus Publish/Subscribe topics must be named constants, not string literals"
}

// Run implements Analyzer.
func (a *BusTopic) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range scopedPackages(t, a.Scope) {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || !busMethods[fn.FullName()] {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				switch arg.(type) {
				case *ast.Ident, *ast.SelectorExpr:
					return true // named constant or variable: fine
				}
				// Anything else that the type checker evaluates to a
				// constant is an inline literal (possibly concatenated).
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil {
					out = append(out, Finding{
						Pos:  t.Fset.Position(call.Args[0].Pos()),
						Rule: a.Name(),
						Message: fn.Name() + " called with a string-literal topic; " +
							"use a named topic constant (see internal/core/event) so telemetry labels stay bounded",
					})
				}
				return true
			})
		}
	}
	return out
}
