package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint enforces output hygiene for attacker-controlled capture data.
// Fields of kalis/internal/packet.Captured (payload bytes, claimed
// source/destination/transmitter identities, RSSI) and flow keys are
// written by whatever radios in range choose to transmit; embedding
// them raw in alert strings, knowledge-base values, collective sends or
// log output lets a hostile frame inject terminal escapes, fake log
// lines, oversized identities or NaN readings into every downstream
// consumer. A packet-derived value must pass one of the sanitizers in
// kalis/internal/packet — CleanID, CleanPayload, ClampRSSI — before it
// reaches a sink.
//
// The analysis is intraprocedural: taint enters at a source field read
// and propagates through assignments, conversions, string operations
// (fmt.Sprint*/Errorf, strings.*, bytes.*), indexing and composite
// literals within one function. Values returned by other calls and
// function parameters are treated as clean — a deliberate
// under-approximation that keeps the rule quiet; the fixture suite
// documents exactly what it catches.
//
// Sinks:
//
//   - the Details field of a module.Alert composite literal;
//   - knowledge.Base Put* methods (entity keys and values become
//     knowggets mirrored fleet-wide);
//   - collective Transport.Send/Broadcast payloads;
//   - log.* and fmt.Print*/Fprint* output.
type Taint struct {
	Scope ScopeFunc
}

// Name implements Analyzer.
func (*Taint) Name() string { return "taint" }

// Doc implements Analyzer.
func (*Taint) Doc() string {
	return "packet-derived fields must pass a packet.Clean*/Clamp* sanitizer before alerts, knowggets, collective sends, or logs"
}

// taintSourceFields lists the attacker-controlled struct fields, by
// package path, type name and field name.
var taintSourceFields = map[[3]string]bool{
	{"kalis/internal/packet", "Captured", "Payload"}:     true,
	{"kalis/internal/packet", "Captured", "Src"}:         true,
	{"kalis/internal/packet", "Captured", "Dst"}:         true,
	{"kalis/internal/packet", "Captured", "Transmitter"}: true,
	{"kalis/internal/packet", "Captured", "RSSI"}:        true,
	{"kalis/internal/flow", "Key", "Src"}:                true,
	{"kalis/internal/flow", "Key", "Dst"}:                true,
}

// taintSanitizers are the blessed laundering points.
var taintSanitizers = map[string]bool{
	"kalis/internal/packet.CleanID":      true,
	"kalis/internal/packet.CleanPayload": true,
	"kalis/internal/packet.ClampRSSI":    true,
}

// taintSinkFuncs are plain function sinks, by FullName.
var taintSinkFuncs = map[string]string{
	"log.Print":    "log output",
	"log.Printf":   "log output",
	"log.Println":  "log output",
	"log.Fatal":    "log output",
	"log.Fatalf":   "log output",
	"log.Panicf":   "log output",
	"fmt.Print":    "terminal output",
	"fmt.Printf":   "terminal output",
	"fmt.Println":  "terminal output",
	"fmt.Fprint":   "writer output",
	"fmt.Fprintf":  "writer output",
	"fmt.Fprintln": "writer output",
}

// Run implements Analyzer.
func (a *Taint) Run(t *Target) []Finding {
	g := CallGraphOf(t)
	var out []Finding
	for _, node := range g.Nodes {
		if !a.Scope(node.Pkg.Path) {
			continue
		}
		out = append(out, a.checkNode(t, node)...)
	}
	return out
}

func (a *Taint) checkNode(t *Target, node *CGNode) []Finding {
	tr := &taintTracker{info: node.Pkg.Info, tainted: make(map[*types.Var]bool)}
	// Two passes over the assignments reach fixpoint for the
	// loop-carried flows that matter in practice.
	for i := 0; i < 2; i++ {
		inspectOwn(node.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if tr.taintedExpr(s.Rhs[i]) {
							tr.markVar(lhs)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) && tr.taintedExpr(s.Values[i]) {
						tr.markVar(name)
					}
				}
			case *ast.RangeStmt:
				if tr.taintedExpr(s.X) {
					tr.markVar(s.Key)
					tr.markVar(s.Value)
				}
			}
			return true
		})
	}

	var out []Finding
	flag := func(n ast.Node, what string) {
		out = append(out, Finding{
			Pos:  t.Fset.Position(n.Pos()),
			Rule: a.Name(),
			Message: "packet-derived value reaches " + what + " unsanitized" +
				"; wrap it in packet.CleanID/CleanPayload/ClampRSSI first",
		})
	}
	inspectOwn(node.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CompositeLit:
			// Alert details ship to operators, the SIEM sink and peers.
			if tv, ok := tr.info.Types[s]; ok && isModuleAlert(tv.Type) {
				for _, elt := range s.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Details" && tr.taintedExpr(kv.Value) {
						flag(kv.Value, "an alert Details string")
					}
				}
			}
		case *ast.CallExpr:
			sink := sinkOf(tr.info, s)
			if sink == "" {
				return true
			}
			for _, arg := range s.Args {
				if tr.taintedExpr(arg) {
					flag(arg, sink)
				}
			}
		}
		return true
	})
	return out
}

// sinkOf classifies a call as a taint sink, returning a description or
// "".
func sinkOf(info *types.Info, call *ast.CallExpr) string {
	callee := calleeOf(info, call)
	if callee == nil {
		return ""
	}
	full := callee.FullName()
	if what, ok := taintSinkFuncs[full]; ok {
		return what
	}
	recv := callee.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	if callee.Pkg() != nil {
		switch {
		case callee.Pkg().Path() == "kalis/internal/core/knowledge" && strings.HasPrefix(callee.Name(), "Put"):
			return "a knowledge-base " + callee.Name() + " (mirrored fleet-wide)"
		case callee.Pkg().Path() == "kalis/internal/core/collective" &&
			(callee.Name() == "Send" || callee.Name() == "Broadcast"):
			return "a collective transport " + callee.Name()
		}
	}
	return ""
}

// taintTracker evaluates expression taint against the set of tainted
// local variables.
type taintTracker struct {
	info    *types.Info
	tainted map[*types.Var]bool
}

func (tr *taintTracker) markVar(e ast.Expr) {
	if e == nil {
		return
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := tr.info.Defs[id].(*types.Var); ok {
		tr.tainted[v] = true
	} else if v, ok := tr.info.Uses[id].(*types.Var); ok && !v.IsField() {
		tr.tainted[v] = true
	}
}

// taintedExpr reports whether the expression carries packet-derived
// data.
func (tr *taintTracker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := tr.info.Uses[e].(*types.Var); ok {
			return tr.tainted[v]
		}
	case *ast.SelectorExpr:
		if tr.isSourceField(e) {
			return true
		}
		// d.x where x selected off a tainted base: conservative pass-through.
		return tr.taintedExpr(e.X)
	case *ast.StarExpr:
		return tr.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return tr.taintedExpr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.EQL || e.Op == token.NEQ || e.Op == token.LSS ||
			e.Op == token.GTR || e.Op == token.LEQ || e.Op == token.GEQ {
			return false // comparisons yield booleans, not data
		}
		return tr.taintedExpr(e.X) || tr.taintedExpr(e.Y)
	case *ast.IndexExpr:
		return tr.taintedExpr(e.X)
	case *ast.SliceExpr:
		return tr.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if tr.taintedExpr(elt) {
				return true
			}
		}
	case *ast.CallExpr:
		return tr.taintedCall(e)
	}
	return false
}

// taintedCall handles conversions (taint passes through), sanitizers
// (taint stops) and string-building propagators (taint of any
// argument); all other calls return clean values.
func (tr *taintTracker) taintedCall(call *ast.CallExpr) bool {
	if tv, ok := tr.info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && tr.taintedExpr(call.Args[0])
	}
	callee := calleeOf(tr.info, call)
	if callee == nil {
		return false
	}
	full := callee.FullName()
	if taintSanitizers[full] {
		return false
	}
	pkg := callee.Pkg()
	propagator := false
	if pkg != nil {
		switch pkg.Path() {
		case "fmt":
			propagator = strings.HasPrefix(callee.Name(), "Sprint") || callee.Name() == "Errorf"
		case "strings", "bytes", "strconv", "unicode/utf8":
			propagator = true
		}
	}
	if !propagator {
		return false
	}
	for _, arg := range call.Args {
		if tr.taintedExpr(arg) {
			return true
		}
	}
	return false
}

// isSourceField reports a read of an attacker-controlled field.
func (tr *taintTracker) isSourceField(sel *ast.SelectorExpr) bool {
	s, ok := tr.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return false
	}
	// Walk to the field's owning named struct type.
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := [3]string{named.Obj().Pkg().Path(), named.Obj().Name(), v.Name()}
	return taintSourceFields[key]
}
