package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockOrder checks mutex discipline across the devirtualized call
// graph. PR 3/4 added real concurrency — per-topic Block overflow on
// the bus, supervisor state machines, ref-counted endpoint trackers —
// and the repo's convention is copy-under-lock, call-after-unlock: no
// callback, bus publish or channel send ever runs with a mutex held.
// Two violations are flagged:
//
//   - a lock held across a call that can block: a blocking channel
//     send (no select-default), directly or transitively. Under the
//     bus's Block overflow policy a publish with a lock held is a
//     deadlock: the consumer that would drain the queue may need the
//     same lock.
//   - inconsistent acquisition order: if one code path locks A then B
//     and another locks B then A (same lock classes, where a class is
//     the declared mutex variable or field), the paths deadlock under
//     contention. The acquisition-order graph is built from every
//     lexical Lock/RLock pair and every call made while a lock is
//     held, using the callees' transitive acquisition summaries;
//     cycles are reported once each.
//
// Goroutine launches (go statements) start a fresh lock scope and are
// not followed. The simulation is lexical and per-function: Lock adds
// the class to the held set, Unlock removes it, a deferred Unlock
// holds to the end of the body.
type LockOrder struct {
	Scope ScopeFunc
}

// Name implements Analyzer.
func (*LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (*LockOrder) Doc() string {
	return "consistent mutex acquisition order; no lock held across a blocking send or bus publish"
}

// lockOp classifies one sync.(RW)Mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

var mutexMethods = map[string]lockOp{
	"(*sync.Mutex).Lock":      opLock,
	"(*sync.Mutex).Unlock":    opUnlock,
	"(*sync.RWMutex).Lock":    opLock,
	"(*sync.RWMutex).Unlock":  opUnlock,
	"(*sync.RWMutex).RLock":   opLock,
	"(*sync.RWMutex).RUnlock": opUnlock,
}

// lockSummary is one function's transitive locking behaviour.
type lockSummary struct {
	// acquires is the set of lock classes the function (or a callee)
	// locks at some point.
	acquires map[*types.Var]bool
	// blocking marks a function that can block: a plain channel send
	// here or in any synchronous callee.
	blocking bool
	// blockVia names the blocking construct for reporting.
	blockVia string
}

// orderEdge is one observed acquisition ordering: to was locked (or a
// callee acquiring to was entered) while from was held.
type orderEdge struct {
	from, to *types.Var
	pos      token.Position
	fn       string
}

// Run implements Analyzer.
func (a *LockOrder) Run(t *Target) []Finding {
	g := CallGraphOf(t)
	classes := &lockClasses{info: make(map[*types.Var]string)}

	// Per-node direct summaries, then a fixpoint over synchronous edges
	// for the transitive ones. Summaries are whole-graph: a scoped
	// function's callees may live anywhere in the module.
	sums := make(map[*CGNode]*lockSummary, len(g.Nodes))
	for _, n := range g.Nodes {
		sums[n] = directLockSummary(t, n, classes)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			s := sums[n]
			for _, e := range g.Edges(n) {
				if e.Kind == EdgeGo {
					continue
				}
				cs := sums[e.To]
				if cs.blocking && !s.blocking {
					s.blocking = true
					s.blockVia = "call to " + e.To.Name
					changed = true
				}
				for c := range cs.acquires {
					if !s.acquires[c] {
						s.acquires[c] = true
						changed = true
					}
				}
			}
		}
	}

	var out []Finding
	var edges []orderEdge
	for _, n := range g.Nodes {
		if !a.Scope(n.Pkg.Path) {
			continue
		}
		fOut, fEdges := a.simulate(t, g, n, sums, classes)
		out = append(out, fOut...)
		edges = append(edges, fEdges...)
	}
	out = append(out, a.cycleFindings(edges, classes)...)
	return out
}

// simulate walks one body lexically, tracking the held set.
func (a *LockOrder) simulate(t *Target, g *CallGraph, n *CGNode, sums map[*CGNode]*lockSummary, classes *lockClasses) ([]Finding, []orderEdge) {
	info := n.Pkg.Info
	nonBlocking := nonBlockingSends(n)
	deferred := deferredCalls(n)
	held := make(map[*types.Var]bool)
	heldOrder := []*types.Var{} // deterministic reporting order
	var out []Finding
	var edges []orderEdge

	heldNames := func() string {
		var names []string
		for _, h := range heldOrder {
			if held[h] {
				names = append(names, classes.name(h))
			}
		}
		return strings.Join(names, ", ")
	}

	inspectOwn(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.GoStmt:
			return false // fresh goroutine, fresh lock scope
		case *ast.SendStmt:
			if !nonBlocking[s] && anyHeld(held) {
				out = append(out, Finding{
					Pos:  t.Fset.Position(s.Pos()),
					Rule: a.Name(),
					Message: "blocking channel send with " + heldNames() + " held" +
						"; release the lock first — the receiver may need it (deadlock under the Block overflow policy)",
				})
			}
		case *ast.CallExpr:
			op, class := classifyLockCall(info, s, classes)
			switch op {
			case opLock:
				if class == nil {
					return true
				}
				for _, h := range heldOrder {
					if held[h] && h != class {
						edges = append(edges, orderEdge{from: h, to: class, pos: t.Fset.Position(s.Pos()), fn: n.Name})
					}
				}
				if !held[class] {
					held[class] = true
					heldOrder = append(heldOrder, class)
				}
			case opUnlock:
				// A deferred Unlock releases at return: the lock stays
				// held for the rest of the body.
				if class != nil && !deferred[s] {
					delete(held, class)
				}
			default:
				if !anyHeld(held) {
					return true
				}
				for _, e := range g.EdgesAt(n, s.Pos()) {
					if e.Kind == EdgeGo {
						continue
					}
					cs := sums[e.To]
					if cs.blocking {
						out = append(out, Finding{
							Pos:  t.Fset.Position(s.Pos()),
							Rule: a.Name(),
							Message: "call to " + e.To.Name + " with " + heldNames() + " held can block (" + cs.blockVia + ")" +
								"; copy under the lock, release, then call — deadlock under the Block overflow policy",
						})
					}
					for acq := range cs.acquires {
						for _, h := range heldOrder {
							if held[h] && h != acq {
								edges = append(edges, orderEdge{from: h, to: acq, pos: t.Fset.Position(s.Pos()), fn: n.Name})
							}
						}
					}
				}
			}
		}
		return true
	})
	return out, edges
}

// directLockSummary scans one body for its own acquisitions and
// blocking sends.
func directLockSummary(t *Target, n *CGNode, classes *lockClasses) *lockSummary {
	s := &lockSummary{acquires: make(map[*types.Var]bool)}
	nonBlocking := nonBlockingSends(n)
	inspectOwn(n.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !nonBlocking[st] && !s.blocking {
				s.blocking = true
				s.blockVia = "channel send at " + relPos(t, st.Pos())
			}
		case *ast.CallExpr:
			if op, class := classifyLockCall(n.Pkg.Info, st, classes); op == opLock && class != nil {
				s.acquires[class] = true
			}
		}
		return true
	})
	return s
}

// classifyLockCall resolves a sync mutex method call to its operation
// and lock class (the mutex variable or field).
func classifyLockCall(info *types.Info, call *ast.CallExpr, classes *lockClasses) (lockOp, *types.Var) {
	callee := calleeOf(info, call)
	if callee == nil {
		return opNone, nil
	}
	op, ok := mutexMethods[callee.FullName()]
	if !ok {
		return opNone, nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return op, nil
	}
	switch base := ast.Unparen(fun.X).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[base]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				classes.record(v, ownerName(sel.Recv())+"."+v.Name())
				return op, v
			}
		}
		if v, ok := info.Uses[base.Sel].(*types.Var); ok {
			classes.record(v, v.Pkg().Name()+"."+v.Name())
			return op, v
		}
	case *ast.Ident:
		if v, ok := info.Uses[base].(*types.Var); ok {
			// A mutex-typed local or package var; embedded mutexes
			// (t.Lock() with t a struct) are keyed by the struct var,
			// which still orders consistently within a function.
			name := v.Name()
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				name = v.Pkg().Name() + "." + name
			}
			classes.record(v, name)
			return op, v
		}
	}
	return op, nil
}

// lockClasses names lock classes for reporting.
type lockClasses struct {
	info map[*types.Var]string
}

func (c *lockClasses) record(v *types.Var, name string) {
	if _, ok := c.info[v]; !ok {
		c.info[v] = name
	}
}

func (c *lockClasses) name(v *types.Var) string {
	if n, ok := c.info[v]; ok {
		return n
	}
	return v.Name()
}

// ownerName renders the receiver type holding a mutex field.
func ownerName(typ types.Type) string {
	for {
		if p, ok := typ.(*types.Pointer); ok {
			typ = p.Elem()
			continue
		}
		break
	}
	if named, ok := typ.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return typeShort(typ)
}

func anyHeld(held map[*types.Var]bool) bool {
	for _, h := range held {
		if h {
			return true
		}
	}
	return false
}

// cycleFindings reports each strongly connected component of the
// acquisition-order graph once, listing the contradictory orderings.
func (a *LockOrder) cycleFindings(edges []orderEdge, classes *lockClasses) []Finding {
	adj := make(map[*types.Var]map[*types.Var]orderEdge)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[*types.Var]orderEdge)
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e
		}
	}
	sccs := stronglyConnected(adj)
	var out []Finding
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[*types.Var]bool, len(scc))
		for _, v := range scc {
			inSCC[v] = true
		}
		var lines []string
		var first *orderEdge
		for _, from := range scc {
			for to, e := range adj[from] {
				if !inSCC[to] {
					continue
				}
				e := e
				file := e.pos.Filename
				if i := strings.LastIndexByte(file, '/'); i >= 0 {
					file = file[i+1:]
				}
				lines = append(lines, classes.name(e.from)+" -> "+classes.name(e.to)+
					" in "+e.fn+" at "+file+":"+strconv.Itoa(e.pos.Line))
				if first == nil || e.pos.Filename < first.pos.Filename ||
					(e.pos.Filename == first.pos.Filename && e.pos.Line < first.pos.Line) {
					first = &e
				}
			}
		}
		sort.Strings(lines)
		out = append(out, Finding{
			Pos:  first.pos,
			Rule: a.Name(),
			Message: "inconsistent mutex acquisition order (deadlock under contention): " +
				strings.Join(lines, "; ") + "; pick one order and hold to it",
		})
	}
	return out
}

// stronglyConnected is Tarjan's algorithm over the class digraph, with
// deterministic visit order.
func stronglyConnected(adj map[*types.Var]map[*types.Var]orderEdge) [][]*types.Var {
	verts := make(map[*types.Var]bool)
	for from, tos := range adj {
		verts[from] = true
		for to := range tos {
			verts[to] = true
		}
	}
	var order []*types.Var
	for v := range verts {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })

	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	var stack []*types.Var
	next := 0
	var sccs [][]*types.Var

	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []*types.Var
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].Pos() < succs[j].Pos() })
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

// deferredCalls collects the call expressions of defer statements in
// the node's own body.
func deferredCalls(n *CGNode) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	inspectOwn(n.Body, func(node ast.Node) bool {
		if d, ok := node.(*ast.DeferStmt); ok {
			out[d.Call] = true
		}
		return true
	})
	return out
}

// relPos renders a position compactly for messages.
func relPos(t *Target, pos token.Pos) string {
	p := t.Fset.Position(pos)
	parts := strings.Split(p.Filename, "/")
	return parts[len(parts)-1] + ":" + strconv.Itoa(p.Line)
}
