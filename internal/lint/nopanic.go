package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// NoPanic forbids panic outside init-time registration and confines
// recover to the module supervisor: a passive IDS node must degrade,
// count and keep observing rather than crash while traffic flows — and
// the *only* component allowed to catch a crash is the supervisor,
// whose panic barrier quarantines the offending module. A recover
// anywhere else would silently swallow programming errors instead of
// feeding them into the quarantine/backoff/probation machinery. panic
// is tolerated only inside func init (wiring-time programming-error
// guards); every other deliberate use of either built-in needs a
// //lint:ignore nopanic with its justification.
type NoPanic struct {
	Scope ScopeFunc
	// RecoverExempt lists slash-separated file-path suffixes where
	// recover is legal (the supervisor's panic barrier). Empty means
	// recover is flagged everywhere in scope.
	RecoverExempt []string
}

// Name implements Analyzer.
func (*NoPanic) Name() string { return "nopanic" }

// Doc implements Analyzer.
func (*NoPanic) Doc() string {
	return "no panic outside init-time registration, no recover outside the module supervisor"
}

func (a *NoPanic) recoverExempt(filename string) bool {
	slash := filepath.ToSlash(filename)
	for _, suf := range a.RecoverExempt {
		if strings.HasSuffix(slash, suf) {
			return true
		}
	}
	return false
}

// Run implements Analyzer.
func (a *NoPanic) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range scopedPackages(t, a.Scope) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Recv == nil && fd.Name.Name == "init" {
					continue // init-time registration may panic
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok {
						return true
					}
					b, ok := pkg.Info.Uses[id].(*types.Builtin)
					if !ok {
						return true
					}
					switch b.Name() {
					case "panic":
						out = append(out, Finding{
							Pos:  t.Fset.Position(call.Pos()),
							Rule: a.Name(),
							Message: "panic outside init-time registration; " +
								"return an error or degrade gracefully (a passive IDS must keep observing)",
						})
					case "recover":
						pos := t.Fset.Position(call.Pos())
						if a.recoverExempt(pos.Filename) {
							return true
						}
						out = append(out, Finding{
							Pos:  pos,
							Rule: a.Name(),
							Message: "recover outside the module supervisor; " +
								"crashes must flow through the supervisor's panic barrier " +
								"(quarantine/backoff/probation), not be swallowed locally",
						})
					}
					return true
				})
			}
		}
	}
	return out
}
