package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic outside init-time registration: a passive IDS
// node must degrade, count and keep observing rather than crash while
// traffic flows. panic is tolerated only inside func init (wiring-time
// programming-error guards); every other deliberate use needs a
// //lint:ignore nopanic with its justification.
type NoPanic struct {
	Scope ScopeFunc
}

// Name implements Analyzer.
func (*NoPanic) Name() string { return "nopanic" }

// Doc implements Analyzer.
func (*NoPanic) Doc() string {
	return "no panic outside init-time registration in internal/"
}

// Run implements Analyzer.
func (a *NoPanic) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range scopedPackages(t, a.Scope) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Recv == nil && fd.Name.Name == "init" {
					continue // init-time registration may panic
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok {
						return true
					}
					if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
						out = append(out, Finding{
							Pos:  t.Fset.Position(call.Pos()),
							Rule: a.Name(),
							Message: "panic outside init-time registration; " +
								"return an error or degrade gracefully (a passive IDS must keep observing)",
						})
					}
					return true
				})
			}
		}
	}
	return out
}
