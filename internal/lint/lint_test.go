package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// moduleRoot is the repository root relative to this package.
const moduleRoot = "../.."

var (
	loadOnce   sync.Once
	loadTarget *Target
	loadErr    error
)

// loadModule loads the module plus every fixture package exactly once
// for all tests.
func loadModule(t *testing.T) *Target {
	t.Helper()
	loadOnce.Do(func() {
		dirs, err := fixtureDirs()
		if err != nil {
			loadErr = err
			return
		}
		rels := make([]string, len(dirs))
		for i, d := range dirs {
			rels[i] = filepath.Join("internal/lint", d)
		}
		loadTarget, loadErr = Load(moduleRoot, rels...)
	})
	if loadErr != nil {
		t.Fatalf("loading module: %v", loadErr)
	}
	return loadTarget
}

// fixtureDirs lists testdata/<rule>/<case> relative to this package.
func fixtureDirs() ([]string, error) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*", "*"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && fi.IsDir() {
			dirs = append(dirs, m)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// extraWant lists expected findings that cannot be expressed as inline
// "// want rule" markers (the malformed-directive finding sits on the
// directive's own line, where any marker text would read as a reason).
var extraWant = map[string][]string{
	"testdata/directive/bad": {"lint"},
}

// wantMarkers parses "// want rule [rule...]" markers from every Go
// file of a fixture dir, returning "file:line:rule" keys (repeated for
// multiple findings on one line).
func wantMarkers(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			base := filepath.Base(file)
			for _, rule := range strings.Fields(after) {
				want = append(want, fmt.Sprintf("%s:%d:%s", base, i+1, rule))
			}
		}
	}
	for _, rule := range extraWant[filepath.ToSlash(dir)] {
		want = append(want, "*:"+rule)
	}
	sort.Strings(want)
	return want
}

// TestFixtures checks every rule against its positive and negative
// fixture: bad packages must produce exactly the marked findings (so
// kalislint exits non-zero on them), good packages none.
func TestFixtures(t *testing.T) {
	target := loadModule(t)
	dirs, err := fixtureDirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture dirs under testdata/")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.ToSlash(dir), func(t *testing.T) {
			pkgPath := "kalis/internal/lint/" + filepath.ToSlash(dir)
			if target.PackageByPath(pkgPath) == nil {
				t.Fatalf("fixture package %s not loaded", pkgPath)
			}
			findings := Run(target, FixtureAnalyzers(PathScope(pkgPath)))

			absDir, err := filepath.Abs(dir)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, f := range findings {
				if filepath.Dir(f.Pos.Filename) != absDir {
					continue // e.g. malformed directives in other fixtures
				}
				key := fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)
				got = append(got, key)
			}
			sort.Strings(got)

			want := wantMarkers(t, dir)
			if !matchFindings(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
			if strings.HasSuffix(dir, string(filepath.Separator)+"bad") && len(got) == 0 {
				t.Error("negative fixture produced no findings: kalislint would exit 0 on it")
			}
		})
	}
}

// matchFindings compares got against want, where a want entry of the
// form "*:rule" matches any position with that rule.
func matchFindings(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	used := make([]bool, len(got))
	for _, w := range want {
		matched := false
		for i, g := range got {
			if used[i] {
				continue
			}
			if g == w || (strings.HasPrefix(w, "*:") && strings.HasSuffix(g, ":"+strings.TrimPrefix(w, "*:"))) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// TestRepoClean is the merge gate in test form: the production rule set
// must report nothing on the repository itself (fixtures excluded).
func TestRepoClean(t *testing.T) {
	target := loadModule(t)
	var dirty []string
	for _, f := range Run(target, DefaultAnalyzers()) {
		if strings.Contains(filepath.ToSlash(f.Pos.Filename), "/testdata/") {
			continue
		}
		dirty = append(dirty, f.String())
	}
	if len(dirty) > 0 {
		t.Errorf("kalislint findings on the tree:\n%s", strings.Join(dirty, "\n"))
	}
}

// TestLoadTestsFixture exercises the _test.go loading pass end to end
// on a self-contained fixture module: the relaxed errcheck flags error
// discards in test helpers (in-package and external) but exempts go
// test entry points, and the merged type-check resolves unexported
// identifiers from the base package.
func TestLoadTestsFixture(t *testing.T) {
	target, err := LoadTests(filepath.Join("testdata", "testmod"))
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if target.PackageByPath("testmod") == nil {
		t.Fatal("in-package test group not loaded")
	}
	if target.PackageByPath("testmod_test") == nil {
		t.Fatal("external test package not loaded")
	}
	findings := Run(target, []Analyzer{&ErrCheck{Scope: AllPackages, SkipTestFuncs: true}})
	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule))
	}
	sort.Strings(got)
	want := wantMarkers(t, filepath.Join("testdata", "testmod"))
	if !matchFindings(got, want) {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
	}
}

// TestTestFilesClean is the merge gate for test code: the relaxed rule
// set must report nothing on the repository's own _test.go files.
func TestTestFilesClean(t *testing.T) {
	target, err := LoadTests(moduleRoot)
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	var dirty []string
	for _, f := range Run(target, TestFileAnalyzers()) {
		dirty = append(dirty, f.String())
	}
	if len(dirty) > 0 {
		t.Errorf("kalislint findings on test files:\n%s", strings.Join(dirty, "\n"))
	}
}

// TestSuppressionRequiresReason ensures a reasonless directive is
// reported and does not suppress.
func TestSuppressionRequiresReason(t *testing.T) {
	target := loadModule(t)
	findings := Run(target, FixtureAnalyzers(PathScope("kalis/internal/lint/testdata/directive/bad")))
	var gotLint, gotSimclock bool
	for _, f := range findings {
		if !strings.Contains(filepath.ToSlash(f.Pos.Filename), "/testdata/directive/bad/") {
			continue
		}
		switch f.Rule {
		case "lint":
			gotLint = true
		case "simclock":
			gotSimclock = true
		}
	}
	if !gotLint {
		t.Error("malformed //lint:ignore not reported")
	}
	if !gotSimclock {
		t.Error("malformed //lint:ignore suppressed a finding")
	}
}
