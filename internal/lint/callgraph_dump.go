package lint

import (
	"sort"
	"strings"
)

// DumpMethodGraph renders the devirtualized call graph reachable from
// every method named rootName (in rootScope), walking synchronous
// in-scope edges exactly as the path rules do. The output is stable
// across builds — nodes sorted by name, one "-> callee" line per edge —
// so a committed golden file makes graph regressions visible in review.
//
// Edges the walk does not follow are still listed, annotated:
//
//	[go]        launched on its own goroutine
//	[coldpath]  callee is //lint:coldpath, cut from path walks
//	[out]       callee outside the walk scope
func DumpMethodGraph(t *Target, rootName string, rootScope, walkScope ScopeFunc) string {
	g := CallGraphOf(t)
	roots := g.MethodRoots(map[string]bool{rootName: true}, rootScope)
	within := func(n *CGNode) bool { return walkScope(n.Pkg.Path) || rootScope(n.Pkg.Path) }
	reach := g.Reachable(roots, within)

	names := make([]string, 0, len(reach))
	byName := make(map[string]*CGNode, len(reach))
	for n := range reach {
		names = append(names, n.Name)
		byName[n.Name] = n
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		n := byName[name]
		sb.WriteString(name)
		sb.WriteString("\n")
		seen := make(map[string]bool)
		var lines []string
		for _, e := range g.Edges(n) {
			var notes []string
			if e.Kind == EdgeGo {
				notes = append(notes, "go")
			}
			if e.To.Cold {
				notes = append(notes, "coldpath")
			}
			if !within(e.To) {
				notes = append(notes, "out")
			}
			line := "  -> " + e.To.Name
			if len(notes) > 0 {
				line += " [" + strings.Join(notes, ",") + "]"
			}
			if !seen[line] {
				seen[line] = true
				lines = append(lines, line)
			}
		}
		sort.Strings(lines)
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
