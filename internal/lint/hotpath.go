package lint

import (
	"go/ast"
	"go/types"
)

// HotPath guards the per-packet budget behind the paper's §VI-B
// overhead results. The packet path — every method named HandlePacket,
// HandleCapture or drainShard in RootScope, plus its transitive
// callees within WalkScope on the devirtualized call graph (see
// callgraph.go) — must not:
//
//   - format with fmt.Sprintf/fmt.Errorf (allocation and reflection per
//     packet). Formatting inside a module.Alert composite literal is
//     exempt: alert construction is the cold, cooldown-gated branch.
//   - perform a blocking channel send (a send outside a select with a
//     default case). A passive IDS must never exert backpressure on the
//     capture path.
//   - resolve telemetry vector children via CounterVec.With or
//     HistogramVec.With. With on a hot path is a per-packet map lookup;
//     the telemetry package hands out pre-resolvable child handles —
//     cache them when wiring, off the packet path.
//
// The traversal follows interface dispatch (every in-module
// implementation), method values, function-value callbacks and nested
// literals; goroutine launches and //lint:coldpath functions are the
// only cuts.
type HotPath struct {
	RootScope ScopeFunc
	WalkScope ScopeFunc
}

// rootMethodNames seed the packet-path traversal. drainShard is the
// sharded ingestion worker's dispatch loop: on sharded nodes every
// packet flows through it (ring pop → Manager.HandleBatch), so it is a
// packet-path root even though goroutine launches cut the graph walk
// from HandleCapture to the worker body. gossipRound is the collective
// anti-entropy fan-out: at fleet scale it fires once per beacon tick on
// every node and its digest encode sits on the bytes-on-wire budget, so
// it is policed like the packet path.
var rootMethodNames = map[string]bool{
	"HandlePacket":  true,
	"HandleCapture": true,
	"drainShard":    true,
	"gossipRound":   true,
}

// vecWithMethods are the telemetry child lookups banned on the path.
var vecWithMethods = map[string]bool{
	"(*kalis/internal/telemetry.CounterVec).With":   true,
	"(*kalis/internal/telemetry.HistogramVec).With": true,
}

// Name implements Analyzer.
func (*HotPath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (*HotPath) Doc() string {
	return "no fmt formatting, blocking sends, or telemetry Vec.With lookups on the packet path"
}

// pathReachable walks the call graph from the packet-path roots,
// returning each reached node mapped to a sample root. Shared with
// HotAlloc, which patrols the same path.
func pathReachable(t *Target, rootScope, walkScope ScopeFunc) map[*CGNode]*CGNode {
	g := CallGraphOf(t)
	roots := g.MethodRoots(rootMethodNames, rootScope)
	return g.Reachable(roots, func(n *CGNode) bool {
		return walkScope(n.Pkg.Path) || rootScope(n.Pkg.Path)
	})
}

// Run implements Analyzer.
func (a *HotPath) Run(t *Target) []Finding {
	g := CallGraphOf(t)
	var out []Finding
	for node, root := range pathReachable(t, a.RootScope, a.WalkScope) {
		out = append(out, a.checkNode(t, node, root)...)
	}
	// Coldpath directives are part of this rule's traversal contract,
	// so their malformations are reported here (once per Run).
	out = append(out, g.Malformed...)
	return out
}

// alertLitRanges collects the [start, end) position ranges of
// module.Alert composite literals in a node's own body — the exempt
// cold branch for formatting and allocation checks.
func alertLitRanges(node *CGNode) [][2]int {
	var ranges [][2]int
	inspectOwn(node.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := node.Pkg.Info.Types[cl]; ok && isModuleAlert(tv.Type) {
			ranges = append(ranges, [2]int{int(cl.Pos()), int(cl.End())})
		}
		return true
	})
	return ranges
}

func inRanges(ranges [][2]int, n ast.Node) bool {
	p := int(n.Pos())
	for _, r := range ranges {
		if p >= r[0] && p < r[1] {
			return true
		}
	}
	return false
}

// nonBlockingSends collects sends appearing as the comm clause of a
// select with a default case — non-blocking by construction.
func nonBlockingSends(node *CGNode) map[*ast.SendStmt]bool {
	nonBlocking := make(map[*ast.SendStmt]bool)
	inspectOwn(node.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					nonBlocking[send] = true
				}
			}
		}
		return true
	})
	return nonBlocking
}

// checkNode reports the banned constructs inside one packet-path
// function body (nested literals are their own nodes and checked only
// if the graph reaches them).
func (a *HotPath) checkNode(t *Target, node, root *CGNode) []Finding {
	info := node.Pkg.Info
	suffix := " (on the packet path via " + root.Name + ")"
	alertRanges := alertLitRanges(node)
	nonBlocking := nonBlockingSends(node)

	var out []Finding
	inspectOwn(node.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nonBlocking[n] {
				out = append(out, Finding{
					Pos:  t.Fset.Position(n.Pos()),
					Rule: a.Name(),
					Message: "blocking channel send" + suffix +
						"; use a select with a default (drop-and-count) so the capture path never stalls",
				})
			}
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			switch full := callee.FullName(); {
			case full == "fmt.Sprintf" || full == "fmt.Errorf":
				if !inRanges(alertRanges, n) {
					out = append(out, Finding{
						Pos:  t.Fset.Position(n.Pos()),
						Rule: a.Name(),
						Message: "call to " + full + suffix +
							"; per-packet formatting allocates — move it off the path or into the alert literal",
					})
				}
			case vecWithMethods[full]:
				out = append(out, Finding{
					Pos:  t.Fset.Position(n.Pos()),
					Rule: a.Name(),
					Message: "telemetry " + callee.Name() + " lookup" + suffix +
						"; pre-resolve the child handle off the hot path and cache it",
				})
			}
		}
		return true
	})
	return out
}

// isModuleAlert reports whether typ is kalis/internal/core/module.Alert.
func isModuleAlert(typ types.Type) bool {
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "kalis/internal/core/module" && obj.Name() == "Alert"
}
