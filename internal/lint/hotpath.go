package lint

import (
	"go/ast"
	"go/types"
)

// HotPath guards the per-packet budget behind the paper's §VI-B
// overhead results. The packet path — every method named HandlePacket
// or HandleCapture in RootScope, plus its statically resolvable callees
// within WalkScope — must not:
//
//   - format with fmt.Sprintf/fmt.Errorf (allocation and reflection per
//     packet). Formatting inside a module.Alert composite literal is
//     exempt: alert construction is the cold, cooldown-gated branch.
//   - perform a blocking channel send (a send outside a select with a
//     default case). A passive IDS must never exert backpressure on the
//     capture path.
//   - resolve telemetry vector children via CounterVec.With or
//     HistogramVec.With. With on a hot path is a per-packet map lookup;
//     the telemetry package hands out pre-resolvable child handles —
//     cache them when wiring, off the packet path.
//
// The traversal is static and conservative: calls through interfaces
// and function values are not followed (their concrete HandlePacket
// implementations are roots of their own).
type HotPath struct {
	RootScope ScopeFunc
	WalkScope ScopeFunc
}

// rootMethodNames seed the packet-path traversal.
var rootMethodNames = map[string]bool{"HandlePacket": true, "HandleCapture": true}

// vecWithMethods are the telemetry child lookups banned on the path.
var vecWithMethods = map[string]bool{
	"(*kalis/internal/telemetry.CounterVec).With":   true,
	"(*kalis/internal/telemetry.HistogramVec).With": true,
}

// Name implements Analyzer.
func (*HotPath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (*HotPath) Doc() string {
	return "no fmt formatting, blocking sends, or telemetry Vec.With lookups on the packet path"
}

// funcNode is one function body known to the traversal.
type funcNode struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// Run implements Analyzer.
func (a *HotPath) Run(t *Target) []Finding {
	// Index every function declared in the walk or root scope.
	index := make(map[*types.Func]*funcNode)
	var roots []*types.Func
	for _, pkg := range t.Packages {
		inWalk, inRoot := a.WalkScope(pkg.Path), a.RootScope(pkg.Path)
		if !inWalk && !inRoot {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				index[fn] = &funcNode{decl: fd, pkg: pkg}
				if inRoot && fd.Recv != nil && rootMethodNames[fd.Name.Name] {
					roots = append(roots, fn)
				}
			}
		}
	}

	// Breadth-first walk of the static call graph from the roots,
	// remembering one sample root per reached function for reporting.
	via := make(map[*types.Func]*types.Func)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, seen := via[r]; !seen {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := index[fn]
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(node.pkg.Info, call)
			if callee == nil {
				return true
			}
			if _, known := index[callee]; known {
				if _, seen := via[callee]; !seen {
					via[callee] = via[fn]
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	var out []Finding
	for fn, root := range via {
		out = append(out, a.checkFunc(t, index[fn], fn, root)...)
	}
	return out
}

// checkFunc reports the banned constructs inside one packet-path
// function body.
func (a *HotPath) checkFunc(t *Target, node *funcNode, fn, root *types.Func) []Finding {
	info := node.pkg.Info
	suffix := " (on the packet path via " + root.FullName() + ")"

	// Alert composite literals are the exempt cold branch.
	var alertRanges [][2]int // [start, end) offsets by Pos
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := info.Types[cl]; ok && isModuleAlert(tv.Type) {
			alertRanges = append(alertRanges, [2]int{int(cl.Pos()), int(cl.End())})
		}
		return true
	})
	inAlert := func(n ast.Node) bool {
		p := int(n.Pos())
		for _, r := range alertRanges {
			if p >= r[0] && p < r[1] {
				return true
			}
		}
		return false
	}

	// Sends appearing as the comm clause of a select with a default
	// case are non-blocking by construction.
	nonBlocking := make(map[*ast.SendStmt]bool)
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					nonBlocking[send] = true
				}
			}
		}
		return true
	})

	var out []Finding
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !nonBlocking[n] {
				out = append(out, Finding{
					Pos:  t.Fset.Position(n.Pos()),
					Rule: a.Name(),
					Message: "blocking channel send" + suffix +
						"; use a select with a default (drop-and-count) so the capture path never stalls",
				})
			}
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			switch full := callee.FullName(); {
			case full == "fmt.Sprintf" || full == "fmt.Errorf":
				if !inAlert(n) {
					out = append(out, Finding{
						Pos:  t.Fset.Position(n.Pos()),
						Rule: a.Name(),
						Message: "call to " + full + suffix +
							"; per-packet formatting allocates — move it off the path or into the alert literal",
					})
				}
			case vecWithMethods[full]:
				out = append(out, Finding{
					Pos:  t.Fset.Position(n.Pos()),
					Rule: a.Name(),
					Message: "telemetry " + callee.Name() + " lookup" + suffix +
						"; pre-resolve the child handle off the hot path and cache it",
				})
			}
		}
		return true
	})
	return out
}

// isModuleAlert reports whether typ is kalis/internal/core/module.Alert.
func isModuleAlert(typ types.Type) bool {
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "kalis/internal/core/module" && obj.Name() == "Alert"
}
