package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file builds the whole-target devirtualized call graph shared by
// the path-sensitive analyzers (hotpath, hotalloc, lockorder). The
// graph is CHA-style (class hierarchy analysis) and deliberately
// over-approximates:
//
//   - a call through an in-module interface fans out to that method on
//     every in-module concrete type implementing the interface;
//   - a call through a function value fans out to every function,
//     method value or literal observed flowing into the value's
//     variable, field, or parameter — or, for values of a named
//     in-module function type (event.Handler, flow.ExportFunc, ...),
//     to every function coerced to that type anywhere in the module;
//   - a function literal nested in a body is an edge of that body
//     unless it is only launched with go.
//
// go-statement edges are recorded but marked: the callee runs on its
// own goroutine, so path walks (per-packet budget) and lock held-sets
// do not follow them.
//
// A function proven cold by construction (runs only on rare state
// transitions, never per packet) can be cut out of path walks with a
// declaration directive:
//
//	//lint:coldpath <reason>
//
// The reason is mandatory; a directive without one is reported.

// CGNode is one function body in the call graph: a declared function or
// method (Fn != nil) or a function literal (Lit != nil).
type CGNode struct {
	Fn   *types.Func
	Lit  *ast.FuncLit
	Decl *ast.FuncDecl // nil for literals
	Pkg  *Package
	Body *ast.BlockStmt
	// Name is a stable, position-independent identity: Fn.FullName()
	// for declarations, "<parent>$<n>" for the n-th literal nested in
	// parent, in source order.
	Name string
	// Cold marks a //lint:coldpath function: path walks do not enter it.
	Cold bool
}

// CGEdgeKind distinguishes synchronous calls from goroutine launches.
type CGEdgeKind uint8

const (
	// EdgeCall is a synchronous call (plain or deferred).
	EdgeCall CGEdgeKind = iota
	// EdgeGo launches the callee on its own goroutine: off the caller's
	// packet path and outside its lock scope.
	EdgeGo
)

// CGEdge is one resolved call site.
type CGEdge struct {
	To   *CGNode
	Kind CGEdgeKind
	// Pos is the call expression's position (the literal's position for
	// nested-literal edges), letting flow-sensitive rules match edges
	// back to the call sites they simulate.
	Pos token.Pos
}

// CallGraph is the devirtualized call graph of a whole target.
type CallGraph struct {
	// Nodes lists every function body in deterministic (load) order.
	Nodes []*CGNode
	// Malformed reports //lint:coldpath directives without a reason.
	Malformed []Finding

	byFn  map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
	edges map[*CGNode][]CGEdge
}

type callGraphKey struct{}

// CallGraphOf returns the target's call graph, building it on first
// use and memoizing it as a target fact.
func CallGraphOf(t *Target) *CallGraph {
	return t.Fact(callGraphKey{}, func() any { return buildCallGraph(t) }).(*CallGraph)
}

// NodeOf returns the graph node for a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.byFn[fn] }

// LitNodeOf returns the graph node for a function literal, or nil.
func (g *CallGraph) LitNodeOf(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// Edges returns the node's outgoing edges, sorted by callee name.
func (g *CallGraph) Edges(n *CGNode) []CGEdge { return g.edges[n] }

// EdgesAt returns the node's outgoing edges resolved at one call
// position, for rules that simulate bodies statement by statement.
func (g *CallGraph) EdgesAt(n *CGNode, pos token.Pos) []CGEdge {
	var out []CGEdge
	for _, e := range g.edges[n] {
		if e.Pos == pos {
			out = append(out, e)
		}
	}
	return out
}

// MethodRoots returns every method node whose name is in names and
// whose package is in scope — the packet-path roots.
func (g *CallGraph) MethodRoots(names map[string]bool, scope ScopeFunc) []*CGNode {
	var out []*CGNode
	for _, n := range g.Nodes {
		if n.Fn != nil && n.Decl != nil && n.Decl.Recv != nil &&
			names[n.Fn.Name()] && scope(n.Pkg.Path) {
			out = append(out, n)
		}
	}
	return out
}

// Reachable walks synchronous edges from the roots, staying within
// scope and outside //lint:coldpath functions. It returns each reached
// node mapped to a sample root, for "on the packet path via X"
// reporting.
func (g *CallGraph) Reachable(roots []*CGNode, within func(*CGNode) bool) map[*CGNode]*CGNode {
	via := make(map[*CGNode]*CGNode)
	var queue []*CGNode
	for _, r := range roots {
		if r.Cold || !within(r) {
			continue
		}
		if _, seen := via[r]; !seen {
			via[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.edges[n] {
			if e.Kind == EdgeGo || e.To.Cold || !within(e.To) {
				continue
			}
			if _, seen := via[e.To]; !seen {
				via[e.To] = via[n]
				queue = append(queue, e.To)
			}
		}
	}
	return via
}

// inspectOwn walks a node's own body like ast.Inspect, but does not
// descend into nested function literals — those are call-graph nodes of
// their own, visited (or not) according to the graph's edges. The
// literal itself is still passed to fn, so callers can see the edge.
func inspectOwn(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n)
			return false
		}
		return fn(n)
	})
}

// cgBuilder holds the devirtualization tables while the graph is built.
type cgBuilder struct {
	t *Target
	g *CallGraph
	// cha maps an interface method object to the in-module concrete
	// methods implementing it.
	cha map[*types.Func][]*CGNode
	// varBinds maps a variable (local, parameter, field, or package
	// var) of function type to the function values observed flowing
	// into it anywhere in the module.
	varBinds map[*types.Var][]*CGNode
	// coercions maps a named in-module function type (event.Handler,
	// flow.Tracker factories, ...) to every function value coerced to
	// it — the function-type analogue of CHA.
	coercions map[*types.TypeName][]*CGNode
}

func buildCallGraph(t *Target) *CallGraph {
	b := &cgBuilder{
		t: t,
		g: &CallGraph{
			byFn:  make(map[*types.Func]*CGNode),
			byLit: make(map[*ast.FuncLit]*CGNode),
			edges: make(map[*CGNode][]CGEdge),
		},
		cha:       make(map[*types.Func][]*CGNode),
		varBinds:  make(map[*types.Var][]*CGNode),
		coercions: make(map[*types.TypeName][]*CGNode),
	}
	b.collectNodes()
	b.collectCHA()
	b.bindPackageLevel()
	for _, n := range b.g.Nodes {
		if n.Body != nil {
			b.collectBindings(n)
		}
	}
	for _, n := range b.g.Nodes {
		if n.Body != nil {
			b.collectEdges(n)
		}
	}
	for _, n := range b.g.Nodes {
		edges := b.g.edges[n]
		sort.SliceStable(edges, func(i, j int) bool {
			if edges[i].To.Name != edges[j].To.Name {
				return edges[i].To.Name < edges[j].To.Name
			}
			if edges[i].Kind != edges[j].Kind {
				return edges[i].Kind < edges[j].Kind
			}
			return edges[i].Pos < edges[j].Pos
		})
	}
	return b.g
}

// collectNodes indexes every function declaration and literal.
func (b *cgBuilder) collectNodes() {
	for _, pkg := range b.t.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					n := &CGNode{Fn: fn, Decl: d, Pkg: pkg, Body: d.Body, Name: fn.FullName()}
					b.applyColdpath(n)
					b.g.byFn[fn] = n
					b.g.Nodes = append(b.g.Nodes, n)
					b.collectLits(pkg, n.Name, d.Body)
				case *ast.GenDecl:
					// Function literals in package-level initializers.
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for i, v := range vs.Values {
							name := pkg.Path + "." + vs.Names[min(i, len(vs.Names)-1)].Name
							b.collectLits(pkg, name, v)
						}
					}
				}
			}
		}
	}
}

// collectLits registers the function literals directly nested in body
// (not inside deeper literals), named <parent>$<index>, recursing into
// each literal for its own children.
func (b *cgBuilder) collectLits(pkg *Package, parent string, body ast.Node) {
	idx := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		node := &CGNode{Lit: lit, Pkg: pkg, Body: lit.Body, Name: parent + "$" + strconv.Itoa(idx)}
		idx++
		b.g.byLit[lit] = node
		b.g.Nodes = append(b.g.Nodes, node)
		b.collectLits(pkg, node.Name, lit.Body)
		return false
	})
}

// applyColdpath reads a //lint:coldpath directive off the declaration's
// doc comment.
func (b *cgBuilder) applyColdpath(n *CGNode) {
	if n.Decl.Doc == nil {
		return
	}
	for _, c := range n.Decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//lint:coldpath")
		if !ok {
			continue
		}
		if strings.TrimSpace(rest) == "" {
			b.g.Malformed = append(b.g.Malformed, Finding{
				Pos:  b.t.Fset.Position(c.Pos()),
				Rule: "lint",
				Message: "malformed //lint:coldpath directive: " +
					"need \"//lint:coldpath <reason>\"",
			})
			continue
		}
		n.Cold = true
	}
}

// collectCHA pairs every in-module named interface with the in-module
// concrete types implementing it, mapping each abstract method to its
// concrete implementations.
func (b *cgBuilder) collectCHA() {
	var ifaces, concretes []*types.Named
	for _, pkg := range b.t.Packages {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, in := range ifaces {
		iface, ok := in.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 {
			continue
		}
		for _, cn := range concretes {
			var impl types.Type
			switch {
			case types.Implements(cn, iface):
				impl = cn
			case types.Implements(types.NewPointer(cn), iface):
				impl = types.NewPointer(cn)
			default:
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				am := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, am.Pkg(), am.Name())
				cm, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				if n := b.g.byFn[cm]; n != nil {
					b.cha[am] = appendNode(b.cha[am], n)
				}
			}
		}
	}
}

// appendNode appends n if not already present (small lists).
func appendNode(list []*CGNode, n *CGNode) []*CGNode {
	for _, x := range list {
		if x == n {
			return list
		}
	}
	return append(list, n)
}

// namedFuncType returns the in-module named function type behind typ,
// or nil.
func (b *cgBuilder) namedFuncType(typ types.Type) *types.TypeName {
	named, ok := typ.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Signature); !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Pkg() == nil || b.t.byPath[tn.Pkg().Path()] == nil {
		return nil
	}
	return tn
}

// funcValues resolves the function bodies an expression can evaluate
// to: named functions, method values, literals, and conversions of
// those.
func (b *cgBuilder) funcValues(pkg *Package, e ast.Expr) []*CGNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := b.g.byLit[e]; n != nil {
			return []*CGNode{n}
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			if n := b.g.byFn[fn]; n != nil {
				return []*CGNode{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if n := b.g.byFn[fn]; n != nil {
					return []*CGNode{n}
				}
				// Method value on an interface: all implementations.
				return b.cha[fn]
			}
		}
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			if n := b.g.byFn[fn]; n != nil {
				return []*CGNode{n}
			}
		}
	case *ast.CallExpr:
		// A conversion wrapping a function value: Handler(f).
		if tv, ok := pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return b.funcValues(pkg, e.Args[0])
		}
	}
	return nil
}

// bind records function values flowing into a variable (and, when the
// variable's type is a named function type, into that type's coercion
// set).
func (b *cgBuilder) bind(v *types.Var, vals []*CGNode) {
	if v == nil || len(vals) == 0 {
		return
	}
	for _, n := range vals {
		b.varBinds[v] = appendNode(b.varBinds[v], n)
	}
	b.coerce(v.Type(), vals)
}

func (b *cgBuilder) coerce(typ types.Type, vals []*CGNode) {
	tn := b.namedFuncType(typ)
	if tn == nil {
		return
	}
	for _, n := range vals {
		b.coercions[tn] = appendNode(b.coercions[tn], n)
	}
}

// lhsVar resolves the variable object an assignment target denotes.
func lhsVar(pkg *Package, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Defs[e].(*types.Var); ok {
			return v
		}
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// collectBindings scans one node's own statements (plus, for the
// synthetic package-level pass, initializer expressions) for function
// values flowing into variables, fields, composites, and call
// arguments.
func (b *cgBuilder) collectBindings(n *CGNode) {
	pkg := n.Pkg
	inspectOwn(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					b.bind(lhsVar(pkg, lhs), b.funcValues(pkg, s.Rhs[i]))
				}
			}
		case *ast.ValueSpec:
			for i := range s.Names {
				if i < len(s.Values) {
					b.bind(lhsVar(pkg, s.Names[i]), b.funcValues(pkg, s.Values[i]))
				}
			}
		case *ast.CompositeLit:
			b.bindComposite(pkg, s)
		case *ast.CallExpr:
			b.bindCallArgs(n, s)
		}
		return true
	})
}

// bindPackageLevel scans package-level var initializers (function-typed
// globals, registry tables) for bindings; these sit outside any node
// body.
func (b *cgBuilder) bindPackageLevel() {
	for _, pkg := range b.t.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i := range vs.Names {
						if i < len(vs.Values) {
							b.bind(lhsVar(pkg, vs.Names[i]), b.funcValues(pkg, vs.Values[i]))
						}
					}
					for _, v := range vs.Values {
						inspectOwn(v, func(node ast.Node) bool {
							if cl, ok := node.(*ast.CompositeLit); ok {
								b.bindComposite(pkg, cl)
							}
							return true
						})
					}
				}
			}
		}
	}
}

// bindComposite matches composite-literal elements to their
// function-typed fields or element types.
func (b *cgBuilder) bindComposite(pkg *Package, cl *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[cl]
	if !ok {
		return
	}
	typ := tv.Type
	if ptr, ok := typ.Underlying().(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	switch u := typ.Underlying().(type) {
	case *types.Struct:
		for i, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for f := 0; f < u.NumFields(); f++ {
					if u.Field(f).Name() == key.Name {
						b.bind(u.Field(f), b.funcValues(pkg, kv.Value))
						break
					}
				}
			} else if i < u.NumFields() {
				b.bind(u.Field(i), b.funcValues(pkg, elt))
			}
		}
	case *types.Slice:
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			b.coerce(u.Elem(), b.funcValues(pkg, elt))
		}
	case *types.Array:
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			b.coerce(u.Elem(), b.funcValues(pkg, elt))
		}
	case *types.Map:
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				b.coerce(u.Elem(), b.funcValues(pkg, kv.Value))
			}
		}
	}
}

// bindCallArgs binds function-valued arguments to the callee's
// parameters (devirtualizing same-module callbacks) and to the
// parameter's named function type. Function values handed to callees
// outside the module (sort.Slice and friends) are assumed invoked
// synchronously: a direct edge from the caller.
func (b *cgBuilder) bindCallArgs(n *CGNode, call *ast.CallExpr) {
	pkg := n.Pkg
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion: T(f) coerces f to T.
		if len(call.Args) == 1 {
			b.coerce(tv.Type, b.funcValues(pkg, call.Args[0]))
		}
		return
	}
	static := calleeOf(pkg.Info, call)
	var sig *types.Signature
	if static != nil {
		sig, _ = static.Type().(*types.Signature)
	} else if tv, ok := pkg.Info.Types[call.Fun]; ok {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil {
		return
	}
	inModule := static != nil && static.Pkg() != nil && b.t.byPath[static.Pkg().Path()] != nil
	np := sig.Params().Len()
	for i, arg := range call.Args {
		vals := b.funcValues(pkg, arg)
		if len(vals) == 0 {
			continue
		}
		var param *types.Var
		var ptype types.Type
		if sig.Variadic() && i >= np-1 {
			param = sig.Params().At(np - 1)
			ptype = param.Type()
			if sl, ok := ptype.(*types.Slice); ok && !call.Ellipsis.IsValid() {
				ptype = sl.Elem()
			}
		} else if i < np {
			param = sig.Params().At(i)
			ptype = param.Type()
		}
		if ptype != nil {
			b.coerce(ptype, vals)
		}
		switch {
		case inModule && param != nil:
			b.bind(param, vals)
		case static != nil && !inModule:
			// Callback handed to the standard library: assume it runs
			// on the caller's goroutine.
			for _, v := range vals {
				b.addEdge(n, v, EdgeCall, arg.Pos())
			}
		}
	}
}

func (b *cgBuilder) addEdge(from, to *CGNode, kind CGEdgeKind, pos token.Pos) {
	for _, e := range b.g.edges[from] {
		if e.To == to && e.Kind == kind && e.Pos == pos {
			return
		}
	}
	b.g.edges[from] = append(b.g.edges[from], CGEdge{To: to, Kind: kind, Pos: pos})
}

// collectEdges resolves every call site in the node's own body.
func (b *cgBuilder) collectEdges(n *CGNode) {
	// Calls launched with go, and literals that are only launched or
	// immediately invoked (so the plain nested-literal edge is skipped).
	goCalls := make(map[*ast.CallExpr]bool)
	invokedLits := make(map[*ast.FuncLit]bool)
	inspectOwn(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.GoStmt:
			goCalls[s.Call] = true
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(s.Fun).(*ast.FuncLit); ok {
				invokedLits[lit] = true
			}
		}
		return true
	})
	inspectOwn(n.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.FuncLit:
			// A literal created here and not immediately invoked is
			// conservatively part of this body's path (it may be stored
			// and called, or handed to a callee); binding resolution
			// reaches it too, and duplicate edges are deduplicated.
			if !invokedLits[s] {
				if to := b.g.byLit[s]; to != nil {
					b.addEdge(n, to, EdgeCall, s.Pos())
				}
			}
		case *ast.CallExpr:
			b.edgeForCall(n, s, goCalls[s])
		}
		return true
	})
}

// edgeForCall devirtualizes one call expression.
func (b *cgBuilder) edgeForCall(n *CGNode, call *ast.CallExpr, isGo bool) {
	pkg := n.Pkg
	kind := EdgeCall
	if isGo {
		kind = EdgeGo
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if static := calleeOf(pkg.Info, call); static != nil {
		if to := b.g.byFn[static]; to != nil {
			b.addEdge(n, to, kind, call.Pos())
		} else if impls := b.cha[static]; impls != nil {
			// Interface method: fan out to every implementation.
			for _, to := range impls {
				b.addEdge(n, to, kind, call.Pos())
			}
		}
		return
	}
	// A call through a function value.
	var targets []*CGNode
	addVar := func(v *types.Var) {
		targets = append(targets, b.varBinds[v]...)
		if tn := b.namedFuncType(v.Type()); tn != nil {
			targets = append(targets, b.coercions[tn]...)
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if to := b.g.byLit[fun]; to != nil {
			targets = append(targets, to)
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			addVar(v)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				addVar(v)
			}
		} else if v, ok := pkg.Info.Uses[fun.Sel].(*types.Var); ok {
			addVar(v)
		}
	case *ast.IndexExpr:
		// Calling an element of a slice/map of a named function type.
		if tv, ok := pkg.Info.Types[fun]; ok {
			if tn := b.namedFuncType(tv.Type); tn != nil {
				targets = append(targets, b.coercions[tn]...)
			}
		}
	}
	for _, to := range targets {
		b.addEdge(n, to, kind, call.Pos())
	}
}
