package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is errcheck-lite: inside internal/core and internal/proto an
// error returned by a call must not be silently discarded by using the
// call as a bare statement (or launching it with go). Assigning to the
// blank identifier (`_ = f()`) remains legal — it is a visible,
// greppable statement of intent — and deferred cleanup calls
// (`defer f.Close()`) follow the standard idiom. Writes to
// strings.Builder and bytes.Buffer (directly or through fmt.Fprint*)
// are excluded: their error results are documented to always be nil.
// Console printing is likewise exempt — fmt.Print* everywhere, and in
// package main (the CLIs and examples) the whole fmt.Fprint* family:
// command reports go to injected console writers, and a command has no
// recourse when its own terminal write fails. Library code keeps
// strict Fprint checking.
type ErrCheck struct {
	Scope ScopeFunc
	// SkipTestFuncs exempts the bodies of go test entry points
	// (Test*/Benchmark*/Example*/Fuzz*) — the relaxed mode for _test.go
	// files, where a test discards errors on purpose when provoking
	// failures but shared helpers must still handle them.
	SkipTestFuncs bool
}

// Name implements Analyzer.
func (*ErrCheck) Name() string { return "errcheck" }

// Doc implements Analyzer.
func (*ErrCheck) Doc() string {
	return "no silently discarded error returns in internal/core and internal/proto"
}

// Run implements Analyzer.
func (a *ErrCheck) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range scopedPackages(t, a.Scope) {
		inspect := func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil || !returnsError(pkg.Info, call) || neverFails(pkg.Info, call, pkg.Pkg.Name() == "main") {
				return true
			}
			out = append(out, Finding{
				Pos:  t.Fset.Position(call.Pos()),
				Rule: a.Name(),
				Message: "error return discarded; handle it or assign it to _ " +
					"to make the discard explicit",
			})
			return true
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && a.SkipTestFuncs && isTestEntry(fd) {
					continue
				}
				ast.Inspect(decl, inspect)
			}
		}
	}
	return out
}

// neverFails reports whether the call's error result is statically
// known to be nil or not worth checking: methods on
// strings.Builder/bytes.Buffer, fmt.Print*, fmt.Fprint* into an
// infallible writer or a standard stream, and — in package main — any
// fmt.Fprint* console report.
func neverFails(info *types.Info, call *ast.CallExpr, inMain bool) bool {
	fn := calleeOf(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return isInfallibleWriter(recv.Type())
	}
	switch fn.FullName() {
	case "fmt.Printf", "fmt.Print", "fmt.Println":
		return true
	case "fmt.Fprintf", "fmt.Fprint", "fmt.Fprintln":
		if inMain {
			return true
		}
		if len(call.Args) > 0 {
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil {
				if isInfallibleWriter(tv.Type) {
					return true
				}
			}
			return isStdStream(info, call.Args[0])
		}
	}
	return false
}

// isStdStream reports whether the expression is os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr")
}

// isInfallibleWriter reports whether typ is (a pointer to)
// strings.Builder or bytes.Buffer.
func isInfallibleWriter(typ types.Type) bool {
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// returnsError reports whether any result of the call is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch typ := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < typ.Len(); i++ {
			if isErrorType(typ.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(typ)
	}
}
