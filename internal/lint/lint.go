// Package lint is kalislint: a self-contained static-analysis suite
// (standard library go/parser, go/ast and go/types only) that turns the
// repository's prose invariants into merge-blocking checks. The paper's
// §VI-B overhead results hold only if the packet path never blocks or
// formats per packet and the simulator stays deterministic; each
// analyzer enforces one such invariant:
//
//   - simclock: no time.Now/time.Sleep in simulated components — time
//     comes from the sim clock or the capture timestamp.
//   - bustopic: event.Bus topics must be named constants, keeping
//     telemetry label cardinality bounded.
//   - hotpath: the packet path (HandlePacket/HandleCapture methods and
//     their transitive callees within internal/core) must not format
//     with fmt, block on channel sends, or do per-packet telemetry
//     Vec.With lookups.
//   - nopanic: no panic outside init-time registration in internal/.
//   - errcheck: no silently discarded error returns in internal/core
//     and internal/proto.
//
// A finding is suppressed by an explanatory comment on the offending
// line or the line above it:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical file:line: [rule] message
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the rule name used in reports and //lint:ignore comments.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Run reports every violation found in the target.
	Run(t *Target) []Finding
}

// ScopeFunc restricts an analyzer to a subset of the module's packages
// (by import path).
type ScopeFunc func(pkgPath string) bool

// PathScope scopes to the given import paths and their subtrees.
func PathScope(paths ...string) ScopeFunc {
	return func(p string) bool {
		for _, pre := range paths {
			if p == pre || strings.HasPrefix(p, pre+"/") {
				return true
			}
		}
		return false
	}
}

// AllPackages scopes to the whole module.
func AllPackages(string) bool { return true }

// DefaultAnalyzers returns the production rule set with the scopes the
// repository's invariants call for.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		&SimClock{Scope: PathScope(
			"kalis/internal/devices",
			"kalis/internal/netsim",
			"kalis/internal/attacks",
			"kalis/internal/fault",
			"kalis/internal/flow",
			"kalis/internal/core/detection",
			"kalis/internal/core/sensing",
		)},
		&BusTopic{Scope: AllPackages},
		&HotPath{
			RootScope: PathScope("kalis/internal/core", "kalis/internal/ingest"),
			WalkScope: PathScope("kalis/internal/core", "kalis/internal/flow", "kalis/internal/ingest"),
		},
		&NoPanic{
			Scope: PathScope("kalis/internal", "kalis/cmd", "kalis/examples"),
			// The supervisor's panic barrier is the single legal recover
			// site: it converts module crashes into quarantine state.
			RecoverExempt: []string{"internal/core/module/supervisor.go"},
		},
		&ErrCheck{Scope: PathScope("kalis/internal/core", "kalis/internal/persist", "kalis/internal/proto", "kalis/cmd", "kalis/examples")},
		&HotAlloc{
			RootScope: PathScope("kalis/internal/core", "kalis/internal/ingest"),
			WalkScope: PathScope("kalis/internal/core", "kalis/internal/flow", "kalis/internal/ingest"),
		},
		&LockOrder{Scope: PathScope("kalis/internal")},
		&Taint{Scope: PathScope("kalis/internal/core", "kalis/internal/flow")},
	}
}

// FixtureAnalyzers returns every rule scoped to the given packages, for
// linting self-contained fixture packages where each rule must apply
// regardless of the fixture's location.
func FixtureAnalyzers(scope ScopeFunc) []Analyzer {
	return []Analyzer{
		&SimClock{Scope: scope},
		&BusTopic{Scope: scope},
		&HotPath{RootScope: scope, WalkScope: scope},
		&NoPanic{Scope: scope},
		&ErrCheck{Scope: scope},
		&HotAlloc{RootScope: scope, WalkScope: scope},
		&LockOrder{Scope: scope},
		&Taint{Scope: scope},
	}
}

// Run executes the analyzers against the target, applies //lint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Malformed suppression directives are reported as rule "lint".
func Run(t *Target, analyzers []Analyzer) []Finding {
	sup := collectSuppressions(t)
	var out []Finding
	seen := make(map[Finding]bool)
	for _, a := range analyzers {
		for _, f := range a.Run(t) {
			if !sup.suppresses(f) && !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	out = append(out, sup.malformed...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// suppressions indexes //lint:ignore directives by file and line.
type suppressions struct {
	// byFileLine maps filename -> line -> rules ignored on that line.
	byFileLine map[string]map[int]map[string]bool
	malformed  []Finding
}

func (s *suppressions) suppresses(f Finding) bool {
	lines := s.byFileLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	rules := lines[f.Pos.Line]
	return rules != nil && (rules[f.Rule] || rules["*"])
}

// collectSuppressions scans every file's comments for //lint:ignore
// directives. A directive applies to findings on its own line and on
// the line immediately below it (the usual "comment above the
// statement" placement).
func collectSuppressions(t *Target) *suppressions {
	s := &suppressions{byFileLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range t.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := t.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Finding{
							Pos:  pos,
							Rule: "lint",
							Message: "malformed //lint:ignore directive: " +
								"need \"//lint:ignore <rule>[,<rule>...] <reason>\"",
						})
						continue
					}
					end := t.Fset.Position(c.End())
					lines := s.byFileLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						s.byFileLine[pos.Filename] = lines
					}
					for _, rule := range strings.Split(fields[0], ",") {
						rule = strings.TrimSpace(rule)
						if rule == "" {
							continue
						}
						for line := pos.Line; line <= end.Line+1; line++ {
							if lines[line] == nil {
								lines[line] = make(map[string]bool)
							}
							lines[line][rule] = true
						}
					}
				}
			}
		}
	}
	return s
}

// calleeOf resolves the *types.Func a call expression statically
// invokes, or nil for calls through function values, interfaces and
// built-ins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// scopedPackages yields the target's packages selected by scope.
func scopedPackages(t *Target, scope ScopeFunc) []*Package {
	var out []*Package
	for _, pkg := range t.Packages {
		if scope(pkg.Path) {
			out = append(out, pkg)
		}
	}
	return out
}

// isErrorType reports whether typ is the built-in error interface.
func isErrorType(typ types.Type) bool {
	return types.Identical(typ, types.Universe.Lookup("error").Type())
}
