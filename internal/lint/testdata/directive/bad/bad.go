// Package bad carries a malformed suppression: the reason is
// mandatory, and a directive without one neither suppresses nor
// passes.
package bad

import "time"

// Wait tries to excuse its wall-clock read without saying why.
func Wait() time.Time {
	//lint:ignore simclock
	return time.Now() // want simclock
}
