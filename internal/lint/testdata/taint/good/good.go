// Package good sanitizes every packet-derived value at the formatting
// boundary: identities through CleanID, payloads through CleanPayload,
// readings through ClampRSSI. Comparisons yield decisions, not data,
// and stay clean.
package good

import (
	"log"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// Detector mimics a detection module with hygienic reporting.
type Detector struct {
	kb   *knowledge.Base
	emit func(module.Alert)
}

// report launders each identity before it reaches a sink.
func (d *Detector) report(c *packet.Captured) {
	d.emit(module.Alert{
		Module:  "fixture",
		Details: "burst from " + packet.CleanID(c.Src),
	})
	d.kb.PutEntity("Suspect", packet.CleanID(c.Transmitter), "true")
	log.Printf("rssi=%f", packet.ClampRSSI(c.RSSI))
	log.Printf("payload=%s", packet.CleanPayload(c.Payload))
	if c.Src == c.Dst {
		// The comparison consumes tainted data; the boolean it yields
		// carries none.
		log.Print("self-addressed frame")
	}
}
