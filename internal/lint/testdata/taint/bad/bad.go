// Package bad violates taint: attacker-controlled capture fields reach
// every sink class unsanitized — alert details, knowledge-base puts,
// and log output — directly, through locals, and through string
// propagators.
package bad

import (
	"fmt"
	"log"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/flow"
	"kalis/internal/packet"
)

// Detector mimics a detection module with raw-identity reporting.
type Detector struct {
	kb   *knowledge.Base
	emit func(module.Alert)
}

// report ships packet-claimed identities to the sinks unwashed.
func (d *Detector) report(c *packet.Captured) {
	src := c.Src
	d.emit(module.Alert{
		Module:  "fixture",
		Details: "burst from " + string(src), // want taint
	})
	d.kb.PutEntity("Suspect", string(c.Transmitter), "true") // want taint
	log.Printf("flood towards %s", c.Dst)                    // want taint
}

// metrics leaks a raw reading and payload through a propagator chain.
func (d *Detector) metrics(c *packet.Captured) {
	line := fmt.Sprintf("rssi=%f", c.RSSI)
	log.Print(line)                     // want taint
	log.Printf("payload=%x", c.Payload) // want taint
}

// keyLeak shows flow keys are sources too.
func (d *Detector) keyLeak(k flow.Key) {
	log.Println(string(k.Src)) // want taint
}
