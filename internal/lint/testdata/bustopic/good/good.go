// Package good names every event-bus topic with a constant.
package good

import "kalis/internal/core/event"

// topicAudit is a package-local named topic.
const topicAudit = "audit"

// Wire subscribes and publishes through named constants only.
func Wire(b *event.Bus) {
	b.Subscribe(event.TopicPacket, func(interface{}) {})
	b.Publish(topicAudit, nil)
}
