// Package bad violates bustopic: event-bus topics passed as string
// literals instead of named constants.
package bad

import "kalis/internal/core/event"

// Wire subscribes and publishes with inline literals.
func Wire(b *event.Bus) {
	b.Subscribe("packet", func(interface{}) {}) // want bustopic
	b.Publish("pack"+"et", nil)                 // want bustopic
}
