// Package good takes time from the capture envelope, as simulated
// components must.
package good

import (
	"time"

	"kalis/internal/packet"
)

// Age measures a packet's age against the caller-provided virtual now.
func Age(c *packet.Captured, now time.Time) time.Duration {
	return now.Sub(c.Time)
}
