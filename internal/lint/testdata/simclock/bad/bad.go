// Package bad violates simclock: simulated components must not read
// the wall clock or sleep.
package bad

import "time"

// Poll busy-waits on real time — nondeterministic under simulation.
func Poll() time.Time {
	time.Sleep(time.Millisecond) // want simclock
	return time.Now()            // want simclock
}

// Justified shows a suppressed occurrence: no finding is reported.
func Justified() time.Time {
	//lint:ignore simclock fixture: demonstrates a justified suppression
	return time.Now()
}
