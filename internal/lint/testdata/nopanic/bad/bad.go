// Package bad violates nopanic: a runtime code path that crashes the
// node instead of degrading, and a local recover that swallows crashes
// instead of routing them through the module supervisor.
package bad

// Halve refuses odd input the hard way.
func Halve(v int) int {
	if v%2 != 0 {
		panic("odd input") // want nopanic
	}
	return v / 2
}

// Swallow hides crashes from the supervisor's quarantine machinery.
func Swallow(fn func()) {
	defer func() {
		_ = recover() // want nopanic
	}()
	fn()
}
