// Package bad violates nopanic: a runtime code path that crashes the
// node instead of degrading.
package bad

// Halve refuses odd input the hard way.
func Halve(v int) int {
	if v%2 != 0 {
		panic("odd input") // want nopanic
	}
	return v / 2
}
