// Package good confines panic to init-time registration and justifies
// the one deliberate runtime exception.
package good

import "errors"

var registry = make(map[string]func())

func init() {
	if registry == nil {
		panic("nopanic fixture: init-time guards may panic")
	}
}

// Halve reports odd input as an error instead of crashing.
func Halve(v int) (int, error) {
	if v%2 != 0 {
		return 0, errors.New("odd input")
	}
	return v / 2, nil
}

// MustHalve documents its deliberate panic with a suppression.
func MustHalve(v int) int {
	if v%2 != 0 {
		//lint:ignore nopanic fixture: demonstrates a justified suppression
		panic("odd input")
	}
	return v / 2
}
