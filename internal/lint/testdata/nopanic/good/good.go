// Package good confines panic to init-time registration and justifies
// the one deliberate runtime exception.
package good

import "errors"

var registry = make(map[string]func())

func init() {
	if registry == nil {
		panic("nopanic fixture: init-time guards may panic")
	}
}

// Halve reports odd input as an error instead of crashing.
func Halve(v int) (int, error) {
	if v%2 != 0 {
		return 0, errors.New("odd input")
	}
	return v / 2, nil
}

// MustHalve documents its deliberate panic with a suppression.
func MustHalve(v int) int {
	if v%2 != 0 {
		//lint:ignore nopanic fixture: demonstrates a justified suppression
		panic("odd input")
	}
	return v / 2
}

// Guarded documents its deliberate recover with a suppression; outside
// the module supervisor (the rule's RecoverExempt file) every recover
// needs this justification.
func Guarded(fn func()) (err error) {
	defer func() {
		//lint:ignore nopanic fixture: justified recover with documented reason
		if r := recover(); r != nil {
			err = errors.New("recovered")
		}
	}()
	fn()
	return nil
}
