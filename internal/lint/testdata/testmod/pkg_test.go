package pkg

import "testing"

func helper() {
	MayFail() // want errcheck
}

func TestEntryIsExempt(t *testing.T) {
	if secret != 42 {
		t.Fatal("secret")
	}
	MayFail() // exempt: test entry point
	helper()
}

func BenchmarkEntryIsExempt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MayFail() // exempt: benchmark entry point
	}
}
