package pkg_test

import (
	"testing"

	"testmod"
)

func extHelper() {
	pkg.MayFail() // want errcheck
}

func TestExternalEntryIsExempt(t *testing.T) {
	pkg.MayFail() // exempt: test entry point
	extHelper()
}
