// Package pkg is the LoadTests fixture: its test files mix go test
// entry points (exempt from the relaxed errcheck) with shared helpers
// (not exempt), in both the in-package and the external test package.
package pkg

import "errors"

// MayFail is the error-returning call the test files discard.
func MayFail() error { return errors.New("boom") }

// secret is referenced from the in-package test file to prove the
// merged type-check sees unexported identifiers.
const secret = 42
