// Package bad violates hotalloc: per-packet heap allocations of every
// flavor the rule knows — pointer composite literals, slice literals,
// string concatenation, unsized append growth, and interface boxing.
package bad

import "kalis/internal/packet"

// track is per-packet scratch state.
type track struct {
	seen int
}

// Detector mimics a detection module with an allocation-heavy handler.
type Detector struct {
	counts map[string]int
}

// NewDetector builds the count map off the packet path.
func NewDetector() *Detector {
	return &Detector{counts: make(map[string]int)}
}

// HandlePacket is a packet-path root by name.
func (d *Detector) HandlePacket(c *packet.Captured) {
	t := &track{seen: 1} // want hotalloc
	t.seen++
	ids := []string{string(c.Src)}             // want hotalloc
	key := string(c.Src) + "|" + string(c.Dst) // want hotalloc
	d.counts[key] += len(ids)
	var all []int
	all = append(all, len(key)) // want hotalloc
	d.counts["len"] = len(all)
	record(c.RSSI) // want hotalloc
}

// record boxes its argument into the empty interface.
func record(v interface{}) {
	_ = v
}
