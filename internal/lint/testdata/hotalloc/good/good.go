// Package good stays allocation-free per packet: sized preallocation,
// parameter-backed appends, value structs, and formatting only inside
// the exempt Alert literal.
package good

import (
	"fmt"

	"kalis/internal/core/module"
	"kalis/internal/packet"
)

// stat is value scratch state: no pointer literal, no heap.
type stat struct {
	seen int
}

// Detector mimics a well-behaved detection module.
type Detector struct {
	buf  []int
	emit func(module.Alert)
}

// NewDetector preallocates the scratch buffer off the packet path.
func NewDetector(emit func(module.Alert)) *Detector {
	return &Detector{buf: make([]int, 0, 64), emit: emit}
}

// HandlePacket keeps the per-packet budget.
func (d *Detector) HandlePacket(c *packet.Captured) {
	s := stat{seen: 1}
	tmp := make([]int, 0, 8)
	tmp = append(tmp, int(c.RSSI)+s.seen)
	d.buf = appendInto(d.buf, len(tmp))
	if c.Kind == packet.KindTCPSYN {
		// Alert construction is the cold branch: allocation inside the
		// literal is exempt by design, and the identity is sanitized.
		d.emit(module.Alert{
			Module:  "fixture",
			Details: fmt.Sprintf("flood from %s", packet.CleanID(c.Src)),
		})
	}
}

// appendInto grows a caller-owned buffer: parameter-backed slices are
// sized by the caller and exempt from the unsized-append rule.
func appendInto(dst []int, v int) []int {
	return append(dst, v)
}
