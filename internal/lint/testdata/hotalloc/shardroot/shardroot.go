// Package shardroot violates hotalloc from the sharded ingestion
// worker's dispatch loop: drainShard is a packet-path root by name, so
// per-packet heap allocations inside it — or its transitive callees —
// are on the per-packet budget even though no HandlePacket or
// HandleCapture reaches it on the call graph.
package shardroot

import "kalis/internal/packet"

// perPacket is per-packet scratch state.
type perPacket struct {
	seen int
}

// worker mimics one ingestion shard's drain loop owner.
type worker struct {
	counts map[string]int
}

// drainShard is a packet-path root by name: the shard worker's batch
// dispatch loop.
func (w *worker) drainShard(batch []*packet.Captured) {
	for _, c := range batch {
		s := &perPacket{seen: 1} // want hotalloc
		s.seen++
		key := string(c.Src) + "|" + string(c.Dst) // want hotalloc
		w.counts[key] += s.seen
		w.tally(c)
	}
}

// tally is reached transitively from the drainShard root.
func (w *worker) tally(c *packet.Captured) {
	ids := []string{string(c.Src)} // want hotalloc
	w.counts["n"] += len(ids)
}
