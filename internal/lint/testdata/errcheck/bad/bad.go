// Package bad violates errcheck: error returns silently discarded.
package bad

import "errors"

func work() error { return errors.New("boom") }

func workValue() (int, error) { return 0, errors.New("boom") }

// Run drops every error on the floor.
func Run() {
	work()      // want errcheck
	go work()   // want errcheck
	workValue() // want errcheck
}
