// Package good handles or visibly discards every error return.
package good

import "errors"

func work() error { return errors.New("boom") }

func cleanup() error { return nil }

// Run demonstrates the accepted forms.
func Run() error {
	if err := work(); err != nil {
		return err
	}
	// Blank assignment is a visible, greppable statement of intent.
	_ = work()
	// Deferred cleanup follows the standard idiom.
	defer cleanup()
	return nil
}
