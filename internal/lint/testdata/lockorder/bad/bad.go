// Package bad violates lockorder three ways: two paths acquire the
// same two mutexes in opposite orders, a blocking send runs with a
// lock held, and a call into a blocking callee runs with a lock held.
package bad

import "sync"

// Pair guards two resources with separate mutexes and reports through
// an unbuffered channel.
type Pair struct {
	a sync.Mutex
	b sync.Mutex

	out chan int
	val int
}

// NewPair wires the report channel.
func NewPair() *Pair {
	return &Pair{out: make(chan int)}
}

// TransferAB locks a then b.
func (p *Pair) TransferAB() {
	p.a.Lock()
	p.b.Lock() // want lockorder
	p.val++
	p.b.Unlock()
	p.a.Unlock()
}

// TransferBA locks b then a: the contradictory order. The cycle is
// reported once, at the earlier edge in TransferAB.
func (p *Pair) TransferBA() {
	p.b.Lock()
	p.a.Lock()
	p.val--
	p.a.Unlock()
	p.b.Unlock()
}

// Notify sends on the unbuffered channel with the lock held: the
// receiver may need p.a to drain.
func (p *Pair) Notify(v int) {
	p.a.Lock()
	defer p.a.Unlock()
	p.out <- v // want lockorder
}

// push blocks on the report channel.
func (p *Pair) push(v int) {
	p.out <- v
}

// NotifyViaCall reaches the blocking send transitively, with p.b held.
func (p *Pair) NotifyViaCall(v int) {
	p.b.Lock()
	p.push(v) // want lockorder
	p.b.Unlock()
}
