// Package good follows the repo's locking discipline: one global
// acquisition order, copy-under-lock with the send after release, and
// drop-don't-block sends where a lock must stay held.
package good

import "sync"

// Pair guards two resources with separate mutexes.
type Pair struct {
	a sync.Mutex
	b sync.Mutex

	out chan int
	val int
}

// NewPair wires the report channel.
func NewPair() *Pair {
	return &Pair{out: make(chan int, 1)}
}

// Credit locks a then b — the package order.
func (p *Pair) Credit() {
	p.a.Lock()
	p.b.Lock()
	p.val++
	p.b.Unlock()
	p.a.Unlock()
}

// Debit takes the same order, so no cycle forms.
func (p *Pair) Debit() {
	p.a.Lock()
	p.b.Lock()
	p.val--
	p.b.Unlock()
	p.a.Unlock()
}

// Notify copies under the lock and sends after release.
func (p *Pair) Notify() {
	p.a.Lock()
	v := p.val
	p.a.Unlock()
	p.out <- v
}

// TryNotify may keep the lock across its send because the
// select-default never blocks.
func (p *Pair) TryNotify() {
	p.a.Lock()
	defer p.a.Unlock()
	select {
	case p.out <- p.val:
	default: // drop-and-count
	}
}
