// Package funcvalue is the regression fixture for func-value
// devirtualization on the packet path: a violation inside a function
// literal passed as a callback to an in-module helper. Before the
// call-graph rewrite the hot-path walk only followed static calls, so
// the literal's body — invoked two hops away through a parameter —
// escaped analysis entirely.
package funcvalue

import (
	"fmt"

	"kalis/internal/packet"
)

// Detector hands each capture to a helper with a formatting callback.
type Detector struct{}

// HandlePacket is a packet-path root by name; the violation lives in
// the literal it passes down.
func (d *Detector) HandlePacket(c *packet.Captured) {
	forEachLayer(c, func(name string) {
		_ = fmt.Sprintf("layer %s of %s", name, c.Src) // want hotpath
	})
}

// forEachLayer invokes fn for every decoded layer name.
func forEachLayer(c *packet.Captured, fn func(string)) {
	fn(c.Kind.String())
}
