// Package good stays within the per-packet budget: pre-resolved
// telemetry handles, drop-and-count sends, and formatting only inside
// the cold alert literal.
package good

import (
	"fmt"

	"kalis/internal/core/module"
	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// Detector mimics a well-behaved detection module.
type Detector struct {
	// seen is a child handle resolved once at wiring time.
	seen *telemetry.Counter
	out  chan module.Alert
}

// NewDetector pre-resolves the telemetry child off the packet path.
func NewDetector(vec *telemetry.CounterVec, out chan module.Alert) *Detector {
	return &Detector{seen: vec.With("fixture"), out: out}
}

// HandlePacket is a packet-path root by name.
func (d *Detector) HandlePacket(c *packet.Captured) {
	d.seen.Inc()
	a := module.Alert{
		Module: "fixture",
		// Alert construction is the cold, rare branch: formatting
		// inside the Alert literal is exempt by design. The claimed
		// identity passes through the taint sanitizer first.
		Details: fmt.Sprintf("burst from %s", packet.CleanID(c.Src)),
	}
	select {
	case d.out <- a:
	default: // drop-and-count: never stall the capture path
	}
}

// Describe formats freely: it is not reachable from the packet path.
func Describe(c *packet.Captured) string {
	return fmt.Sprintf("%s -> %s", c.Src, c.Dst)
}
