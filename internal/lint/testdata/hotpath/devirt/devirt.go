// Package devirt proves the hot-path walk follows interface dispatch:
// the handler invokes an Observer through its interface type and the
// violation sits in the concrete implementation. Class-hierarchy
// analysis binds the abstract Observe to every in-module concrete
// Observer.
package devirt

import (
	"fmt"

	"kalis/internal/packet"
)

// Observer is the dispatch interface.
type Observer interface {
	Observe(c *packet.Captured)
}

// Noisy is a concrete Observer whose Observe formats per packet.
type Noisy struct{}

// Observe violates the per-packet formatting budget.
func (Noisy) Observe(c *packet.Captured) {
	_ = fmt.Sprintf("saw %s", c.Src) // want hotpath
}

// Detector fans captures out to its observers.
type Detector struct {
	obs []Observer
}

// HandlePacket dispatches through the interface.
func (d *Detector) HandlePacket(c *packet.Captured) {
	for _, o := range d.obs {
		o.Observe(c)
	}
}
