// Package shardroot violates hotpath from the sharded ingestion
// worker's dispatch loop: drainShard is a packet-path root by name
// (every packet on a sharded node flows through it), so formatting,
// blocking sends and telemetry Vec.With lookups inside it — or its
// transitive callees — are on the per-packet budget even though no
// HandlePacket/HandleCapture reaches it on the call graph.
package shardroot

import (
	"fmt"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// worker mimics one ingestion shard's drain loop owner.
type worker struct {
	delivered *telemetry.CounterVec
	out       chan string
}

// drainShard is a packet-path root by name: the shard worker's batch
// dispatch loop.
func (w *worker) drainShard(batch []*packet.Captured) {
	for _, c := range batch {
		w.delivered.With(c.Medium.String()).Inc() // want hotpath
		w.out <- string(c.Src)                    // want hotpath
		w.describe(c)
	}
}

// describe is reached transitively from the drainShard root.
func (w *worker) describe(c *packet.Captured) {
	_ = fmt.Sprintf("batch packet from %s", c.Src) // want hotpath
}
