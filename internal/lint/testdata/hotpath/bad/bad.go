// Package bad violates hotpath: per-packet formatting, a blocking
// send, and a telemetry Vec.With lookup on the packet path.
package bad

import (
	"fmt"

	"kalis/internal/packet"
	"kalis/internal/telemetry"
)

// Detector mimics a detection module's packet handler.
type Detector struct {
	seen *telemetry.CounterVec
	out  chan string
}

// HandlePacket is a packet-path root by name.
func (d *Detector) HandlePacket(c *packet.Captured) {
	d.seen.With(c.Medium.String()).Inc() // want hotpath
	d.out <- string(c.Src)               // want hotpath
	d.describe(c)
}

// describe is reached transitively from HandlePacket.
func (d *Detector) describe(c *packet.Captured) {
	_ = fmt.Sprintf("packet from %s", c.Src) // want hotpath
}
