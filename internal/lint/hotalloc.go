package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc is a heuristic escape check on the packet path (the same
// devirtualized walk as hotpath): constructs that heap-allocate per
// packet are flagged so the §VI-B overhead budget survives review.
// Flagged on the path, outside module.Alert composite literals (the
// cold, cooldown-gated alert branch):
//
//   - pointer composite literals (&T{...}) and slice/map literals —
//     one heap object per packet;
//   - non-constant string concatenation — builds a fresh string per
//     packet (use a struct key or a preallocated buffer);
//   - append to a locally declared slice with no capacity — growth
//     reallocations on the path (preallocate with make(T, 0, cap));
//   - interface boxing: passing a struct, slice, string, array or
//     non-constant numeric value to an interface-typed parameter of an
//     in-module function — the value is copied to the heap at the call.
//
// The rule is deliberately heuristic: value-struct literals, make(),
// pointer-shaped values (pointers, maps, chans, funcs) and calls into
// the standard library are not flagged. Amortized allocations (flow
// expiry batches, once-per-flow state) are expected to carry a
// //lint:ignore hotalloc annotation saying why they are off the
// per-packet budget.
type HotAlloc struct {
	RootScope ScopeFunc
	WalkScope ScopeFunc
}

// Name implements Analyzer.
func (*HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (*HotAlloc) Doc() string {
	return "no per-packet heap allocation on the packet path: composite literals, string concat, unsized append growth, interface boxing"
}

// Run implements Analyzer.
func (a *HotAlloc) Run(t *Target) []Finding {
	var out []Finding
	for node, root := range pathReachable(t, a.RootScope, a.WalkScope) {
		out = append(out, a.checkNode(t, node, root)...)
	}
	return out
}

func (a *HotAlloc) checkNode(t *Target, node, root *CGNode) []Finding {
	info := node.Pkg.Info
	suffix := " (on the packet path via " + root.Name + ")"
	alertRanges := alertLitRanges(node)
	sized := sizedSliceVars(node)

	var out []Finding
	flag := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: t.Fset.Position(n.Pos()), Rule: a.Name(), Message: msg + suffix})
	}
	inspectOwn(node.Body, func(n ast.Node) bool {
		if inRanges(alertRanges, n) {
			return false // the alert literal is the exempt cold branch
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				if tv, ok := info.Types[cl]; ok {
					flag(n, "heap allocation: &"+typeShort(tv.Type)+"{...} per packet"+
						"; hoist it off the path or reuse a pooled value")
				}
				return false // don't re-flag the literal itself
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					flag(n, "heap allocation: slice literal per packet"+
						"; preallocate it off the path")
				case *types.Map:
					flag(n, "heap allocation: map literal per packet"+
						"; preallocate it off the path")
				}
			}
		case *ast.BinaryExpr:
			if isStringConcat(info, n) {
				flag(n, "per-packet string concatenation allocates"+
					"; use a struct key or precomputed string")
				return false // the operands are part of the same chain
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "append") {
				if v := localSliceBase(info, n); v != nil && !sized[v] {
					flag(n, "append growth on an unsized local slice allocates per packet"+
						"; preallocate with make(T, 0, cap)")
				}
				return true
			}
			out = append(out, a.checkBoxing(t, node, n, suffix)...)
		}
		return true
	})
	return out
}

// checkBoxing flags concrete values boxed into interface-typed
// parameters of in-module calls (stdlib calls are out of scope — the
// interesting per-packet boxing is bus publishes and handler payloads).
func (a *HotAlloc) checkBoxing(t *Target, node *CGNode, call *ast.CallExpr, suffix string) []Finding {
	info := node.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	var sig *types.Signature
	if static := calleeOf(info, call); static != nil {
		if static.Pkg() == nil || node.Pkg.Info == nil {
			return nil
		}
		if !inModulePkg(t, static.Pkg().Path()) {
			return nil
		}
		sig, _ = static.Type().(*types.Signature)
	} else if tv, ok := info.Types[call.Fun]; ok {
		// Calls through function values are module-defined by nature.
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}
	if sig == nil {
		return nil
	}
	np := sig.Params().Len()
	var out []Finding
	for i, arg := range call.Args {
		var ptype types.Type
		if sig.Variadic() && i >= np-1 {
			ptype = sig.Params().At(np - 1).Type()
			if sl, ok := ptype.(*types.Slice); ok && !call.Ellipsis.IsValid() {
				ptype = sl.Elem()
			}
		} else if i < np {
			ptype = sig.Params().At(i).Type()
		}
		if ptype == nil {
			continue
		}
		if _, ok := ptype.Underlying().(*types.Interface); !ok {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Value != nil { // constants intern
			continue
		}
		if !boxAllocates(atv.Type) {
			continue
		}
		out = append(out, Finding{
			Pos:  t.Fset.Position(arg.Pos()),
			Rule: a.Name(),
			Message: "interface boxing of " + typeShort(atv.Type) + " value allocates per packet" + suffix +
				"; pass a pointer or preallocate the boxed value",
		})
	}
	return out
}

// boxAllocates reports whether converting a value of typ to an
// interface copies it to the heap: structs, arrays, slices, strings and
// numerics do; pointer-shaped values (pointers, maps, chans, funcs) and
// interfaces don't.
func boxAllocates(typ types.Type) bool {
	switch u := typ.Underlying().(type) {
	case *types.Struct:
		return u.NumFields() > 0
	case *types.Array:
		return u.Len() > 0
	case *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&(types.IsNumeric|types.IsString) != 0
	}
	return false
}

// isStringConcat reports a non-constant string + at the top of its
// chain (the parent of a flagged concat is skipped by the caller).
func isStringConcat(info *types.Info, n *ast.BinaryExpr) bool {
	if n.Op.String() != "+" {
		return false
	}
	tv, ok := info.Types[n]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isBuiltin reports a call to the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// localSliceBase returns the local variable a call appends to, or nil
// when the base is not a plain local identifier (fields and parameters
// are outside this heuristic).
func localSliceBase(info *types.Info, call *ast.CallExpr) *types.Var {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return nil // package-level
	}
	return v
}

// sizedSliceVars collects local slice variables declared with an
// explicit capacity (make with 3 arguments) in the node's own body —
// exempt from the unsized-append check. Parameters are exempt by
// construction (localSliceBase only resolves body-declared locals, but
// parameters resolve too, so record them here as sized: the caller owns
// their capacity).
func sizedSliceVars(node *CGNode) map[*types.Var]bool {
	info := node.Pkg.Info
	sized := make(map[*types.Var]bool)
	if node.Decl != nil && node.Decl.Type.Params != nil {
		for _, f := range node.Decl.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					sized[v] = true
				}
			}
		}
	}
	if node.Lit != nil && node.Lit.Type.Params != nil {
		for _, f := range node.Lit.Type.Params.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					sized[v] = true
				}
			}
		}
	}
	inspectOwn(node.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				if v, ok = info.Uses[id].(*types.Var); !ok {
					continue
				}
			}
			if call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr); ok &&
				isBuiltin(info, call, "make") && len(call.Args) == 3 {
				sized[v] = true
			}
		}
		return true
	})
	return sized
}

// inModulePkg reports whether the import path belongs to the loaded
// module.
func inModulePkg(t *Target, path string) bool { return t.byPath[path] != nil }

// typeShort renders a type compactly for messages (package-qualified
// by name, not full path).
func typeShort(typ types.Type) string {
	return types.TypeString(typ, func(p *types.Package) string { return p.Name() })
}
