package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCallGraphGolden pins the devirtualized packet-path call graph:
// every method named HandlePacket rooted in internal/core, walked
// through internal/flow exactly as the hot-path rules walk it. A
// wiring change that adds, drops or reroutes an edge shows up as a
// golden diff in review instead of a silent analysis gap.
//
// Regenerate after intentional graph changes with either
//
//	go run ./cmd/kalislint -callgraph HandlePacket > internal/lint/testdata/callgraph_handlepacket.golden
//	UPDATE_GOLDEN=1 go test ./internal/lint -run TestCallGraphGolden
func TestCallGraphGolden(t *testing.T) {
	// Load the bare module, not the shared fixture-augmented target:
	// fixture packages implement in-module interfaces (flow.Tracker,
	// event handler types) and would leak class-hierarchy edges into
	// the dump that `kalislint -callgraph` never sees.
	target, err := Load(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	got := DumpMethodGraph(target, "HandlePacket",
		PathScope("kalis/internal/core"),
		PathScope("kalis/internal/core", "kalis/internal/flow"))
	if got == "" {
		t.Fatal("empty HandlePacket call graph: roots not found")
	}

	golden := filepath.Join("testdata", "callgraph_handlepacket.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("HandlePacket call graph drifted from %s\n"+
			"diff it against `go run ./cmd/kalislint -callgraph HandlePacket` and, "+
			"if the wiring change is intentional, regenerate with UPDATE_GOLDEN=1",
			golden)
	}
}
