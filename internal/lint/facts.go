package lint

import "sync"

// facts is the shared-analysis store on a Target: expensive
// whole-program results (the devirtualized call graph, CHA tables) are
// computed once per load and shared by every analyzer, so adding a rule
// does not add another parse+typecheck+graph pass.
type facts struct {
	mu sync.Mutex
	m  map[any]any
}

// Fact returns the memoized value for key, computing it with build on
// first use. Keys are comparable sentinel types (one per fact kind);
// the build function runs at most once per target.
func (t *Target) Fact(key any, build func() any) any {
	t.facts.mu.Lock()
	defer t.facts.mu.Unlock()
	if t.facts.m == nil {
		t.facts.m = make(map[any]any)
	}
	if v, ok := t.facts.m[key]; ok {
		return v
	}
	v := build()
	t.facts.m[key] = v
	return v
}
