package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker facts for Files.
	Info *types.Info
}

// Target is a fully loaded module: every package parsed and
// type-checked, ready for the analyzers.
type Target struct {
	// Module is the module path from go.mod.
	Module string
	// Fset positions every file of every package (and the stdlib
	// declarations pulled in during type-checking).
	Fset *token.FileSet
	// Packages is in dependency order: a package appears after all the
	// module packages it imports.
	Packages []*Package

	byPath map[string]*Package
	// facts memoizes whole-target analysis results shared between
	// analyzers (see Fact).
	facts facts
	// std is the stdlib importer used during type-checking, retained so
	// LoadTests can re-check packages with identical stdlib type
	// identities (two importers would yield incompatible types.Package
	// instances for the same stdlib path).
	std *stdImporter
}

// PackageByPath returns the loaded package with the given import path.
func (t *Target) PackageByPath(path string) *Package { return t.byPath[path] }

// Load parses and type-checks every non-test package of the module
// rooted at root, plus the packages found in extraDirs (absolute or
// root-relative directories, e.g. lint fixtures under a testdata tree
// that the main walk skips). Only the standard library may be imported
// besides the module's own packages.
func Load(root string, extraDirs ...string) (*Target, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(absRoot)
	if err != nil {
		return nil, err
	}
	for _, d := range extraDirs {
		if !filepath.IsAbs(d) {
			d = filepath.Join(absRoot, d)
		}
		dirs = append(dirs, filepath.Clean(d))
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path  string
		dir   string
		files []*ast.File
		deps  []string // intra-module import paths
	}
	raw := make(map[string]*rawPkg)
	var order []string
	for _, dir := range dirs {
		path := importPathFor(module, absRoot, dir)
		if _, ok := raw[path]; ok {
			continue
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rp := &rawPkg{path: path, dir: dir, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == module || strings.HasPrefix(p, module+"/") {
					rp.deps = append(rp.deps, p)
				}
			}
		}
		raw[path] = rp
		order = append(order, path)
	}
	sort.Strings(order)

	// Topological sort over intra-module imports so each package is
	// checked after its dependencies.
	var sorted []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		rp := raw[p]
		if rp != nil {
			deps := append([]string(nil), rp.deps...)
			sort.Strings(deps)
			for _, d := range deps {
				if _, ok := raw[d]; !ok {
					return fmt.Errorf("lint: %s imports %s, which was not found in the module", p, d)
				}
				if err := visit(d); err != nil {
					return err
				}
			}
			sorted = append(sorted, p)
		}
		state[p] = 2
		return nil
	}
	for _, p := range order {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	t := &Target{Module: module, Fset: fset, byPath: make(map[string]*Package), std: newStdImporter(fset)}
	imp := &moduleImporter{target: t, std: t.std}
	for _, path := range sorted {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg, err := conf.Check(path, fset, rp.files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
		}
		lp := &Package{Path: path, Dir: rp.dir, Files: rp.files, Pkg: pkg, Info: info}
		t.Packages = append(t.Packages, lp)
		t.byPath[path] = lp
	}
	return t, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %v", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// importPathFor maps a directory inside the module to its import path.
func importPathFor(module, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// packageDirs walks the module collecting every directory holding
// non-test Go files, skipping testdata, vendor, hidden and underscore
// directories (mirroring the go tool's rules).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && isLintedGoFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// isLintedGoFile reports whether name is a Go source file the linter
// analyzes. Test files are excluded: the invariants guard the runtime
// packet path, and tests legitimately use wall-clock waits, literals
// and panics.
func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// parseDir parses the non-test Go files of one directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleImporter resolves imports during type-checking: module-internal
// paths come from the already-checked packages, everything else must be
// standard library.
type moduleImporter struct {
	target *Target
	std    *stdImporter
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := im.target.byPath[path]; p != nil {
		return p.Pkg, nil
	}
	if path == im.target.Module || strings.HasPrefix(path, im.target.Module+"/") {
		return nil, fmt.Errorf("module package %s not loaded yet (import cycle?)", path)
	}
	return im.std.Import(path)
}

// stdImporter type-checks standard-library packages from $GOROOT/src at
// API level only (function bodies ignored): fast, offline, and free of
// any dependency beyond the standard library itself. Cgo is disabled so
// build-constraint evaluation selects the pure-Go declarations.
type stdImporter struct {
	fset  *token.FileSet
	ctx   build.Context
	cache map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &stdImporter{fset: fset, ctx: ctx, cache: make(map[string]*types.Package)}
}

func (im *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle in stdlib package %s", path)
		}
		return p, nil
	}
	dir, err := im.dirOf(path)
	if err != nil {
		return nil, err
	}
	bp, err := im.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("stdlib %s: %v", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	im.cache[path] = nil // cycle guard while checking
	conf := types.Config{
		Importer:                 im,
		IgnoreFuncBodies:         true,
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
	}
	pkg, err := conf.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("stdlib %s: %v", path, err)
	}
	im.cache[path] = pkg
	return pkg, nil
}

// dirOf locates a stdlib (or stdlib-vendored) package's source.
func (im *stdImporter) dirOf(path string) (string, error) {
	src := filepath.Join(runtime.GOROOT(), "src")
	for _, dir := range []string{
		filepath.Join(src, filepath.FromSlash(path)),
		filepath.Join(src, "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("package %s not found in GOROOT (only stdlib imports are allowed)", path)
}
