package lint

import (
	"go/ast"
)

// SimClock enforces simulator determinism: components that run under
// simulated time (devices, netsim, attack scripts, detection/sensing
// modules) must never read the wall clock or sleep — virtual time comes
// from netsim.Sim.Now and the packet capture timestamp
// (packet.Captured.Time). A stray time.Now makes replayed experiments
// nondeterministic and breaks the paper's reproducibility claims.
type SimClock struct {
	Scope ScopeFunc
}

// Name implements Analyzer.
func (*SimClock) Name() string { return "simclock" }

// Doc implements Analyzer.
func (*SimClock) Doc() string {
	return "no time.Now/time.Sleep in simulated components; use the sim clock or packet timestamp"
}

// Run implements Analyzer.
func (a *SimClock) Run(t *Target) []Finding {
	var out []Finding
	for _, pkg := range scopedPackages(t, a.Scope) {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil {
					return true
				}
				switch fn.FullName() {
				case "time.Now", "time.Sleep":
					out = append(out, Finding{
						Pos:  t.Fset.Position(call.Pos()),
						Rule: a.Name(),
						Message: "call to " + fn.FullName() + " in a simulated component; " +
							"take time from the sim clock (netsim.Sim.Now) or the capture timestamp (Captured.Time)",
					})
				}
				return true
			})
		}
	}
	return out
}
