package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file adds the _test.go loading pass. Test files are excluded
// from the production rule set (the invariants guard the runtime packet
// path, and tests legitimately sleep, panic and format), but two rules
// still pay for themselves there: bustopic, because a literal topic in
// a test silently drifts from the documented topic set the moment it is
// renamed, and errcheck on test *helpers*, because a helper that drops
// an error hides real failures from every test that calls it. Test
// function bodies themselves (Test*/Benchmark*/Example*/Fuzz*) stay
// exempt from errcheck — a test discards errors on purpose when
// provoking failures.

// TestFileAnalyzers returns the relaxed rule set for _test.go files:
// bustopic everywhere, errcheck-lite on test helpers in the packages
// the production errcheck covers.
func TestFileAnalyzers() []Analyzer {
	return []Analyzer{
		&BusTopic{Scope: AllPackages},
		&ErrCheck{
			Scope:         PathScope("kalis/internal/core", "kalis/internal/proto"),
			SkipTestFuncs: true,
		},
	}
}

// LoadTests parses and type-checks every _test.go file of the module
// rooted at root, on top of a regular Load of the non-test packages.
// The returned target holds one package per test group: in-package test
// files are type-checked merged with their package's non-test files
// (they reference unexported identifiers) but only the test files
// appear in Package.Files, so analyzers report findings in test code
// only; external test packages (package foo_test) are checked
// separately under the import path <pkg>_test.
func LoadTests(root string) (*Target, error) {
	base, err := Load(root)
	if err != nil {
		return nil, err
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}

	byDir := make(map[string]*Package, len(base.Packages))
	for _, p := range base.Packages {
		byDir[p.Dir] = p
	}

	dirs, err := testFileDirs(absRoot)
	if err != nil {
		return nil, err
	}

	t := &Target{Module: base.Module, Fset: base.Fset, byPath: make(map[string]*Package), std: base.std}
	imp := &moduleImporter{target: base, std: base.std}
	for _, dir := range dirs {
		path := importPathFor(base.Module, absRoot, dir)
		inPkg, external, err := parseTestFiles(base.Fset, dir)
		if err != nil {
			return nil, err
		}
		if len(inPkg) > 0 {
			files := inPkg
			if bp := byDir[dir]; bp != nil {
				files = append(append([]*ast.File(nil), bp.Files...), inPkg...)
			}
			pkg, info, err := checkFiles(imp, base.Fset, path, files)
			if err != nil {
				return nil, err
			}
			lp := &Package{Path: path, Dir: dir, Files: inPkg, Pkg: pkg, Info: info}
			t.Packages = append(t.Packages, lp)
			t.byPath[path] = lp
		}
		if len(external) > 0 {
			extPath := path + "_test"
			pkg, info, err := checkFiles(imp, base.Fset, extPath, external)
			if err != nil {
				return nil, err
			}
			lp := &Package{Path: extPath, Dir: dir, Files: external, Pkg: pkg, Info: info}
			t.Packages = append(t.Packages, lp)
			t.byPath[extPath] = lp
		}
	}
	return t, nil
}

// checkFiles type-checks one file set with a fresh Info.
func checkFiles(imp types.Importer, fset *token.FileSet, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// parseTestFiles parses a directory's _test.go files, split into the
// in-package group and the external (package foo_test) group.
func parseTestFiles(fset *token.FileSet, dir string) (inPkg, external []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	return inPkg, external, nil
}

// testFileDirs walks the module collecting every directory holding
// _test.go files, with the same skip rules as packageDirs.
func testFileDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// isTestEntry reports whether the declaration is a go test entry point
// (Test*/Benchmark*/Example*/Fuzz* without a receiver) — the functions
// the relaxed errcheck rule exempts.
func isTestEntry(fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	name := fd.Name.Name
	for _, pre := range []string{"Test", "Benchmark", "Example", "Fuzz"} {
		if strings.HasPrefix(name, pre) {
			return true
		}
	}
	return false
}
