package kalis

// Tests for the facade extensions: SIEM export and compile-time
// configuration generation.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
	"kalis/internal/siem"
)

func driveBlackhole(t *testing.T, node *Node) {
	t.Helper()
	node.HandleCapture(capOf(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), tEpoch, -50))
	for i := 0; i < 30; i++ {
		at := tEpoch.Add(time.Duration(i) * 3 * time.Second)
		node.HandleCapture(capOf(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}), at, -65))
	}
}

func TestFacadeSIEMExport(t *testing.T) {
	node, err := New(WithNodeID("edge-7"))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	var buf bytes.Buffer
	exp := node.ExportAlerts(&buf)

	driveBlackhole(t, node)

	if exp.Count() == 0 || exp.Err() != nil {
		t.Fatalf("exported=%d err=%v", exp.Count(), exp.Err())
	}
	events, err := siem.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != exp.Count() {
		t.Errorf("events=%d count=%d", len(events), exp.Count())
	}
	if events[0].Sensor != "edge-7" || events[0].Attack != "blackhole" {
		t.Errorf("event = %+v", events[0])
	}
}

func TestFacadeSuggestConfig(t *testing.T) {
	node, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	driveBlackhole(t, node)

	text := node.SuggestConfig()
	if !strings.Contains(text, "BlackholeModule") || !strings.Contains(text, "Multihop = true") {
		t.Fatalf("suggested config:\n%s", text)
	}
	// The suggested config boots a working constrained node.
	tiny, err := New(WithoutDefaultModules(), WithConfig(text), WithNodeID("tiny"))
	if err != nil {
		t.Fatalf("deploying suggested config: %v\n%s", err, text)
	}
	defer tiny.Close()
	driveBlackhole(t, tiny)
	if len(tiny.Alerts()) == 0 {
		t.Error("constrained deployment detected nothing")
	}
}

func TestFacadeAnomalyOptIn(t *testing.T) {
	node, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	for _, name := range node.ActiveModules() {
		if name == "TrafficAnomalyModule" {
			t.Fatal("anomaly module active without opt-in")
		}
	}
	node.PutKnowledge("AnomalyDetection", "", "true")
	found := false
	for _, name := range node.ActiveModules() {
		if name == "TrafficAnomalyModule" {
			found = true
		}
	}
	if !found {
		t.Error("anomaly module not activated by knowgget")
	}
}
