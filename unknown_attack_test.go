package kalis

// End-to-end demonstration of the hybrid signature/anomaly design
// (§IV-B4): a BLE advertising flood has no signature module, so only
// the opt-in anomaly-based module can react to it.

import (
	"testing"
	"time"

	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
	"kalis/internal/proto/ble"
)

func buildBLEWorld(t *testing.T) (*netsim.Sim, *netsim.Sniffer) {
	t.Helper()
	sim := netsim.New(21)
	sniffer := sim.AddSniffer("kalis", netsim.Position{})
	lockNode := sim.AddNode(&netsim.Node{Name: "lock", Pos: netsim.Position{X: 5}})
	lock := devices.NewSmartLock(lockNode, ble.Address{1, 2, 3, 4, 5, 6})
	lock.Start(sim.Now().Add(time.Second))
	attacker := sim.AddNode(&netsim.Node{Name: "ble-flooder", Pos: netsim.Position{X: 12}})
	inj := &attacks.BLEFlood{Attacker: attacker}
	inj.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(2 * time.Minute),
		Count: 2, Every: time.Minute, Duration: 5 * time.Second,
	})
	return sim, sniffer
}

func TestUnknownAttackNeedsAnomalyModule(t *testing.T) {
	// Without anomaly detection: the flood passes unnoticed (no
	// signature covers BLE advertising floods).
	blind, err := New(WithNodeID("blind"))
	if err != nil {
		t.Fatal(err)
	}
	defer blind.Close()
	sim, sniffer := buildBLEWorld(t)
	sniffer.Subscribe(blind.HandleCapture)
	sim.RunFor(5 * time.Minute)
	if got := len(blind.Alerts()); got != 0 {
		t.Fatalf("signature-only node alerted %d times on an unknown attack", got)
	}
}

func TestAnomalyModuleCatchesUnknownAttack(t *testing.T) {
	node, err := New(WithNodeID("K1"),
		WithConfig(`knowggets = { AnomalyDetection = true }`))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	sim, sniffer := buildBLEWorld(t)
	sniffer.Subscribe(node.HandleCapture)
	sim.RunFor(5 * time.Minute)

	anomalies := 0
	for _, a := range node.Alerts() {
		if a.Attack == "traffic-anomaly" {
			anomalies++
		}
	}
	if anomalies == 0 {
		t.Fatalf("anomaly module missed the BLE flood (alerts: %+v)", node.Alerts())
	}
	// The operator can pull the surrounding traffic for analysis
	// (§IV-B2 replay/window).
	recent := node.Recent(50)
	if len(recent) == 0 {
		t.Error("no recent-traffic window available")
	}
}
