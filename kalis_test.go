package kalis

// Tests of the public facade: the API a downstream user programs
// against.

import (
	"bytes"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

var tEpoch = netsim.Epoch

func capOf(t *testing.T, medium packet.Medium, raw []byte, at time.Time, rssi float64) *Captured {
	t.Helper()
	c, err := stack.Decode(medium, raw)
	if err != nil {
		t.Fatal(err)
	}
	c.Time = at
	c.RSSI = rssi
	return c
}

func TestFacadeEndToEnd(t *testing.T) {
	node, err := New(WithNodeID("edge"), WithWindowSize(128))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.ID() != "edge" {
		t.Errorf("ID = %q", node.ID())
	}

	var alerts []Alert
	node.OnAlert(func(a Alert) { alerts = append(alerts, a) })

	node.HandleCapture(capOf(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), tEpoch, -50))
	for i := 0; i < 30; i++ {
		at := tEpoch.Add(time.Duration(i) * 3 * time.Second)
		node.HandleCapture(capOf(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}), at, -65))
	}
	if len(alerts) == 0 {
		t.Fatal("no alerts through the facade")
	}
	if len(node.Alerts()) != len(alerts) {
		t.Error("Alerts() and OnAlert disagree")
	}
	found := false
	for _, kg := range node.Knowledge() {
		if kg.Label == "Multihop" && kg.Value == "true" {
			found = true
		}
	}
	if !found {
		t.Error("Multihop knowgget missing from Knowledge()")
	}
}

func TestFacadeStaticKnowledgeAndModules(t *testing.T) {
	node, err := New(WithoutDefaultModules())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if got := node.ActiveModules(); len(got) != 0 {
		t.Errorf("modules active without installs: %v", got)
	}
	node.PutKnowledge("Mobility", "", "false")
	if err := node.InstallModule("MobilityAwarenessModule", nil); err != nil {
		t.Fatal(err)
	}
	// Statically-known mobility suppresses the sensing module.
	if got := node.ActiveModules(); len(got) != 0 {
		t.Errorf("mobility module active despite static knowledge: %v", got)
	}
}

func TestFacadeWithConfig(t *testing.T) {
	node, err := New(
		WithoutDefaultModules(),
		WithConfig(`modules = { TrafficStatsModule(interval=2s) } knowggets = { Multihop = true }`),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if got := node.ActiveModules(); len(got) != 1 || got[0] != "TrafficStatsModule" {
		t.Errorf("active = %v", got)
	}
}

func TestFacadeConfigError(t *testing.T) {
	if _, err := New(WithConfig("modules = {")); err == nil {
		t.Error("bad config accepted")
	}
}

// countingModule is a minimal custom module for extensibility tests.
type countingModule struct {
	ctx     *ModuleContext
	packets int
}

func (m *countingModule) Name() string                  { return "CountingModule" }
func (m *countingModule) Kind() module.Kind             { return module.KindDetection }
func (m *countingModule) WatchLabels() []string         { return nil }
func (m *countingModule) Required(*knowledge.Base) bool { return true }
func (m *countingModule) Activate(ctx *ModuleContext)   { m.ctx = ctx }
func (m *countingModule) Deactivate()                   { m.ctx = nil }
func (m *countingModule) HandlePacket(c *Captured) {
	m.packets++
	if m.packets == 3 {
		m.ctx.Emit(Alert{Time: c.Time, Attack: "custom-anomaly", Module: m.Name(), Confidence: 0.5})
	}
}

func TestFacadeCustomModule(t *testing.T) {
	node, err := New(WithoutDefaultModules())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	mod := &countingModule{}
	node.RegisterModule("CountingModule", func(map[string]string) (Module, error) { return mod, nil })
	if err := node.InstallModule("CountingModule", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		node.HandleCapture(capOf(t, packet.MediumIEEE802154,
			stack.BuildCTPBeacon(2, 1, 10, uint8(i)), tEpoch.Add(time.Duration(i)*time.Second), -60))
	}
	if mod.packets != 5 {
		t.Errorf("custom module saw %d packets", mod.packets)
	}
	if len(node.Alerts()) != 1 || node.Alerts()[0].Attack != "custom-anomaly" {
		t.Errorf("alerts = %+v", node.Alerts())
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	// Record with one node, replay into another — the §VI-A
	// methodology through the public API.
	var buf bytes.Buffer
	rec, err := New(WithNodeID("recorder"))
	if err != nil {
		t.Fatal(err)
	}
	rec.SetLog(&buf)
	for i := 0; i < 20; i++ {
		at := tEpoch.Add(time.Duration(i) * 3 * time.Second)
		rec.HandleCapture(capOf(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}), at, -65))
	}
	if err := rec.Close(); err != nil { // Close flushes the trace log
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nothing logged")
	}

	replayer, err := New(WithNodeID("replayer"))
	if err != nil {
		t.Fatal(err)
	}
	defer replayer.Close()
	replayed, skipped, err := replayer.ReplayTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || replayed == 0 {
		t.Errorf("replayed=%d skipped=%d", replayed, skipped)
	}
	// The replayer reaches the same conclusion as live capture.
	if v, ok := boolKnowledge(replayer, "Multihop"); !ok || !v {
		t.Error("replayer did not learn Multihop from the trace")
	}
}

func boolKnowledge(n *Node, label string) (bool, bool) {
	for _, kg := range n.Knowledge() {
		if kg.Label == label {
			return kg.Value == "true", true
		}
	}
	return false, false
}

func TestFacadeFirewall(t *testing.T) {
	node, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	fw := node.NewFirewall(0.8)

	// Drive a blackhole detection; the firewall must start dropping
	// the suspect's frames.
	node.HandleCapture(capOf(t, packet.MediumIEEE802154, stack.BuildCTPBeacon(1, 1, 0, 1), tEpoch, -50))
	for i := 0; i < 30; i++ {
		at := tEpoch.Add(time.Duration(i) * 3 * time.Second)
		node.HandleCapture(capOf(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}), at, -65))
	}
	if got := fw.Blocked(); len(got) == 0 {
		t.Fatal("firewall learned nothing from alerts")
	}
	suspectFrame := capOf(t, packet.MediumIEEE802154,
		stack.BuildCTPData(2, 1, 2, 99, 0, 10, []byte{0x01, 99}), tEpoch.Add(time.Hour), -60)
	if fw.Filter(suspectFrame) != FirewallDrop {
		t.Error("suspect frame passed the firewall")
	}
}
