// Package kalis is a knowledge-driven, self-adapting intrusion
// detection system for the Internet of Things — a from-scratch Go
// implementation of "Kalis — A System for Knowledge-driven Adaptable
// Intrusion Detection for the Internet of Things" (ICDCS 2017).
//
// A Kalis node passively overhears heterogeneous IoT traffic (IEEE
// 802.15.4/ZigBee/6LoWPAN/CTP, WiFi/IP, BLE), autonomously distills
// knowledge about the monitored network's features (topology, traffic
// statistics, mobility, mediums) into a Knowledge Base of "knowggets",
// and uses that knowledge to dynamically activate exactly the
// detection modules the environment calls for. Collective knowledge
// management lets multiple Kalis nodes share selected knowggets over
// an encrypted channel and detect distributed attacks (e.g. wormholes)
// no single observer could classify.
//
// Quick start:
//
//	node, err := kalis.New(kalis.WithNodeID("K1"))
//	if err != nil { ... }
//	defer node.Close()
//	node.OnAlert(func(a kalis.Alert) { fmt.Println("ALERT:", a.Attack, a.Suspects) })
//	for capture := range captures { node.HandleCapture(capture) }
//
// See the examples/ directory for complete scenarios, and cmd/kalis-bench
// for the reproduction of the paper's evaluation.
package kalis

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"kalis/internal/core"
	"kalis/internal/core/collective"
	"kalis/internal/core/firewall"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/core/response"
	"kalis/internal/flow"
	"kalis/internal/ingest"
	"kalis/internal/packet"
	"kalis/internal/siem"
	"kalis/internal/telemetry"
	"kalis/internal/trace"
)

// Re-exported core types: these are the vocabulary of the public API.
type (
	// Alert is a detection event raised by a detection module.
	Alert = module.Alert
	// Knowgget is one piece of knowledge ⟨label, value, creator,
	// entity⟩ in the Knowledge Base.
	Knowgget = knowledge.Knowgget
	// Captured is one overheard frame with its capture metadata and
	// decoded protocol layers.
	Captured = packet.Captured
	// NodeID identifies a monitored network entity.
	NodeID = packet.NodeID
	// Module is the interface custom sensing/detection modules
	// implement.
	Module = module.Module
	// ModuleContext carries the dependencies injected into an active
	// module.
	ModuleContext = module.Context
	// Firewall is the smart-firewall deployment component.
	Firewall = firewall.Firewall
	// FirewallVerdict is a firewall filtering decision.
	FirewallVerdict = firewall.Verdict
	// Responder executes automatic response actions driven by alerts.
	Responder = response.Responder
	// ResponsePolicy maps attack classes to response actions.
	ResponsePolicy = response.Policy
	// FlowRecord is an exported (expired/terminated) flow summary with
	// its final per-flow feature values.
	FlowRecord = flow.Record
	// FlowKey identifies one unidirectional flow (medium + endpoints +
	// protocol class + ports).
	FlowKey = flow.Key
	// IngestStats is the sharded ingestion pipeline's packet
	// accounting: Enqueued == Accepted + Dropped always, and
	// Accepted == Delivered at every quiescent point (after
	// DrainIngest or Close).
	IngestStats = ingest.Stats
)

// DefaultResponsePolicy isolates on high-confidence alerts with the
// given cap on how many entities may ever be isolated.
func DefaultResponsePolicy(maxIsolations int) ResponsePolicy {
	return response.DefaultPolicy(maxIsolations)
}

// Firewall verdicts.
const (
	FirewallAllow = firewall.Allow
	FirewallDrop  = firewall.Drop
)

// Option configures a Node.
type Option func(*core.Config)

// WithNodeID sets the node identifier (the knowgget creator field)
// used to distinguish this Kalis node from its peers. Default "K1".
func WithNodeID(id string) Option {
	return func(c *core.Config) { c.NodeID = id }
}

// WithConfig supplies a configuration file in the paper's Fig. 6
// grammar: module activations with parameters, and a-priori static
// knowggets.
func WithConfig(text string) Option {
	return func(c *core.Config) { c.ConfigText = text }
}

// WithWindowSize sets the Data Store sliding-window capacity in
// packets.
func WithWindowSize(n int) Option {
	return func(c *core.Config) { c.WindowSize = n }
}

// WithAsyncEvents switches the event bus to asynchronous delivery
// (each subscriber on its own goroutine); the default synchronous mode
// is deterministic.
func WithAsyncEvents() Option {
	return func(c *core.Config) { c.Async = true }
}

// WithoutKnowledge disables knowledge-driven adaptation: all installed
// modules stay active at all times and fall back to naive techniques.
// This is the paper's "traditional IDS" baseline; it exists in the
// public API for comparison studies.
func WithoutKnowledge() Option {
	return func(c *core.Config) { c.KnowledgeDriven = false }
}

// WithoutDefaultModules skips installing the built-in module library;
// install modules explicitly with InstallModule (or via WithConfig).
func WithoutDefaultModules() Option {
	return func(c *core.Config) { c.InstallAll = false }
}

// WithStateDir enables durable state in the given directory: the node
// recovers its Knowledge Base and Data Store window from a previous
// run at startup (warm restart), journals every accepted knowledge
// mutation, and compacts the journal into a crash-safe snapshot
// periodically and at Close. A corrupt snapshot or torn journal
// degrades gracefully — a truncated or cold start, never a failure.
func WithStateDir(dir string) Option {
	return func(c *core.Config) { c.StateDir = dir }
}

// WithPersistInterval sets the snapshot-compaction interval on the
// capture clock (default 30s of observed traffic time). Only
// meaningful together with WithStateDir.
func WithPersistInterval(d time.Duration) Option {
	return func(c *core.Config) { c.PersistInterval = d }
}

// WithShards selects the ingestion parallelism. n <= 1 keeps the
// default synchronous in-line dispatch (deterministic: HandleCapture
// returns only after every module saw the packet). n > 1 runs n shard
// pipelines — per-shard ring buffer, worker, Data Store window, flow
// table and module instances — sharded by hash of the packet source,
// so per-source detector state and per-source capture order stay
// intact while aggregate throughput scales with cores. Pass
// runtime.NumCPU() for the usual live deployment. In sharded mode
// HandleCapture only enqueues; call DrainIngest (or Close) before
// reading alerts or counters after a replay.
func WithShards(n int) Option {
	return func(c *core.Config) { c.Shards = n }
}

// WithIngestRing sets the per-shard ring capacity in packets (rounded
// up to a power of two; default 4096). Only meaningful with
// WithShards(n > 1).
func WithIngestRing(n int) Option {
	return func(c *core.Config) { c.IngestRing = n }
}

// WithIngestBatch caps how many packets a shard worker dispatches per
// batch (default 256). Only meaningful with WithShards(n > 1).
func WithIngestBatch(n int) Option {
	return func(c *core.Config) { c.IngestBatch = n }
}

// WithIngestBlocking selects lossless ingestion backpressure: a full
// shard ring makes HandleCapture spin until space frees instead of
// dropping the packet. The default drop-newest policy matches a
// passive IDS (never block capture); blocking mode is for offline
// replay and benchmarks where every packet must be observed. Only
// meaningful with WithShards(n > 1).
func WithIngestBlocking() Option {
	return func(c *core.Config) { c.IngestBlock = true }
}

// WithIngestMaxSkew bounds, in capture time, how far the ingestion
// feed may run ahead of the slowest shard that still has queued work.
// An accelerated replay can otherwise hand one shard worker a whole
// trace before another is scheduled, so traffic-derived knowledge (and
// the module activations it drives) lags entire attack episodes behind
// the racing shard. Live capture does not need it — arrival time
// tracks capture time, so skew is physically bounded by queue depth.
// Only meaningful with WithShards(n > 1) and WithIngestBlocking; 0
// disables pacing.
func WithIngestMaxSkew(d time.Duration) Option {
	return func(c *core.Config) { c.IngestMaxSkew = d }
}

// Node is one Kalis IDS node.
type Node struct {
	inner *core.Kalis
}

// New builds a Kalis node. By default it is knowledge-driven, installs
// the full built-in module library (three sensing modules and twelve
// detection modules), and delivers events synchronously.
func New(opts ...Option) (*Node, error) {
	cfg := core.Config{
		NodeID:          "K1",
		KnowledgeDriven: true,
		InstallAll:      true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	inner, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Node{inner: inner}, nil
}

// ID returns the node identifier.
func (n *Node) ID() string { return n.inner.ID() }

// HandleCapture feeds one overheard frame into the node. Wire it to a
// live capture source or to trace replay.
func (n *Node) HandleCapture(c *Captured) { n.inner.HandleCapture(c) }

// DrainIngest blocks until every packet the shard rings accepted so
// far has been dispatched to the modules. A no-op on unsharded nodes.
func (n *Node) DrainIngest() { n.inner.DrainIngest() }

// IngestStats returns the sharded ingestion pipeline's packet
// accounting (the zero value on unsharded nodes).
func (n *Node) IngestStats() IngestStats { return n.inner.IngestStats() }

// Shards returns the node's ingestion shard count (1 when unsharded).
func (n *Node) Shards() int { return n.inner.Shards() }

// OnAlert registers a consumer for detection events. On sharded nodes
// callbacks are invoked from shard worker goroutines (possibly
// concurrently); synchronize any shared state they touch.
func (n *Node) OnAlert(fn func(Alert)) { n.inner.OnAlert(fn) }

// OnKnowledge registers a consumer for Knowledge Base changes.
func (n *Node) OnKnowledge(fn func(Knowgget)) { n.inner.OnKnowledge(fn) }

// Alerts returns every alert collected so far.
func (n *Node) Alerts() []Alert { return n.inner.Alerts() }

// ActiveModules returns the names of the currently active modules —
// the observable face of knowledge-driven adaptation.
func (n *Node) ActiveModules() []string { return n.inner.ActiveModules() }

// QuarantinedModules returns the modules the supervisor currently
// withholds from dispatch: panicked modules waiting out their backoff
// and modules shed by the latency circuit breaker. The node keeps
// observing with the remaining modules — graceful degradation instead
// of a crash.
func (n *Node) QuarantinedModules() []string { return n.inner.QuarantinedModules() }

// ModuleHealth reports every installed module's activation and
// supervision state: "inactive", "healthy", "quarantined", "probing"
// (post-quarantine probation) or "shed" (circuit breaker).
func (n *Node) ModuleHealth() map[string]string { return n.inner.ModuleHealth() }

// Knowledge returns a snapshot of the Knowledge Base, sorted by key.
func (n *Node) Knowledge() []Knowgget { return n.inner.KB().Snapshot() }

// PutKnowledge stores an a-priori knowgget, as a configuration file's
// knowggets section would.
func (n *Node) PutKnowledge(label, entity, value string) {
	n.inner.KB().PutStatic(label, entity, value)
}

// InstallModule instantiates a module from the registry by name and
// installs it with the given parameters.
func (n *Node) InstallModule(name string, params map[string]string) error {
	return n.inner.Install(name, params)
}

// RegisterModule adds a custom module factory under the given name,
// making it available to configuration files and InstallModule —
// Kalis' extensibility mechanism ("new detection capabilities could be
// added as soon as new communication interfaces were available").
func (n *Node) RegisterModule(name string, factory func(params map[string]string) (Module, error)) {
	n.inner.Registry().Register(name, factory)
}

// OnFlowRecord registers a callback invoked for every flow exported
// from the flow table (idle/active timeout, capacity eviction, or
// shutdown flush). Records arrive via the flow.records bus topic, which
// coalesces per flow under queue pressure.
func (n *Node) OnFlowRecord(fn func(FlowRecord)) { n.inner.OnFlowRecord(fn) }

// SetLog writes all observed traffic to w in the Kalis trace format.
func (n *Node) SetLog(w io.Writer) { n.inner.SetLog(w) }

// Recent returns up to count of the most recently observed frames,
// oldest first — the Data Store's sliding window (§IV-B2), typically
// pulled by an operator to analyze the traffic around an incident.
// count <= 0 returns the whole window.
func (n *Node) Recent(count int) []*Captured { return n.inner.Store().Recent(count) }

// ReplayTrace feeds a recorded trace through the node, transparently
// to the modules. It returns the number of frames replayed and skipped
// (undecodable).
func (n *Node) ReplayTrace(r io.Reader) (replayed, skipped int, err error) {
	recs, err := trace.ReadAll(r)
	if err != nil {
		return 0, 0, fmt.Errorf("kalis: replay: %w", err)
	}
	skipped = trace.Replay(recs, func(c *packet.Captured) {
		replayed++
		n.HandleCapture(c)
	})
	return replayed, skipped, nil
}

// EnableCollectiveUDP turns on collective knowledge management over
// UDP: the node beacons its presence to the given discovery addresses
// and synchronizes collective knowggets with discovered peers, AES-GCM
// encrypted with the pre-shared passphrase.
func (n *Node) EnableCollectiveUDP(listenAddr string, discoveryAddrs []string, passphrase string) error {
	t, err := collective.NewUDPTransport(listenAddr, discoveryAddrs)
	if err != nil {
		return err
	}
	return n.inner.EnableCollective(t, passphrase)
}

// CollectivePeers returns the discovered peer Kalis node IDs.
func (n *Node) CollectivePeers() []string {
	if c := n.inner.Collective(); c != nil {
		return c.Peers()
	}
	return nil
}

// BeaconNow broadcasts one collective-discovery beacon immediately
// (and, in gossip mode, runs the anti-entropy round that rides it).
func (n *Node) BeaconNow() {
	if c := n.inner.Collective(); c != nil {
		c.Beacon()
	}
}

// GossipNow runs one collective anti-entropy gossip round immediately:
// flush buffered local updates and exchange digests with up to the
// fan-out cap of random peers.
func (n *Node) GossipNow() {
	if c := n.inner.Collective(); c != nil {
		c.Gossip()
	}
}

// NewFirewall creates a smart firewall fed by this node's alerts —
// the §V smart-router deployment. Frames can then be filtered with
// Firewall.Filter.
func (n *Node) NewFirewall(minConfidence float64) *Firewall {
	fw := firewall.New(0, minConfidence)
	tel := n.inner.Telemetry()
	fw.SetMetrics(firewall.Metrics{
		Passed:    tel.Counter("kalis_firewall_passed_total", "Frames allowed through the smart firewall."),
		Dropped:   tel.Counter("kalis_firewall_dropped_total", "Frames blocked by the smart firewall."),
		BlockList: tel.Gauge("kalis_firewall_blocklist", "Suspects currently on the firewall block list."),
	})
	n.OnAlert(fw.HandleAlert)
	return fw
}

// NewResponder creates an automatic-response executor fed by this
// node's alerts (§III: "automatic response actions (such as
// re-transmission of packets, and device isolation)"). Wire its
// Isolate/Block hooks to the deployment before traffic flows.
func (n *Node) NewResponder(policy ResponsePolicy) *Responder {
	r := response.NewResponder(policy)
	n.OnAlert(r.HandleAlert)
	return r
}

// ExportAlerts streams this node's detection events to w as NDJSON for
// SIEM ingestion ("Kalis ... can act as data source for multisource
// security information management (SIEM) systems", §I). The returned
// exporter reports the event count and any write error.
func (n *Node) ExportAlerts(w io.Writer) *siem.Exporter {
	exp := siem.NewExporter(n.ID(), w)
	n.OnAlert(exp.HandleAlert)
	return exp
}

// Telemetry returns the node's always-on runtime-metrics registry
// (packet counters, per-module latency histograms, queue depths, ...).
// It is distinct from internal/metrics, which scores offline
// experiments after a replay finishes.
func (n *Node) Telemetry() *telemetry.Registry { return n.inner.Telemetry() }

// TelemetryHandler returns the admin endpoint for this node:
// Prometheus exposition on /metrics, a JSON snapshot on /metrics.json,
// liveness on /healthz, and Go profiling under /debug/pprof/. Mount it
// on any HTTP server, or use ServeTelemetry to start a dedicated one.
func (n *Node) TelemetryHandler() http.Handler {
	return telemetry.NewAdminMux(n.inner.Telemetry())
}

// ServeTelemetry starts the admin endpoint on addr (port :0 picks a
// free port; read it back with Addr on the returned server). Close the
// returned server to stop it.
func (n *Node) ServeTelemetry(addr string) (*telemetry.AdminServer, error) {
	return telemetry.ServeAdmin(addr, n.inner.Telemetry())
}

// SuggestConfig distills the node's current knowledge into a fixed
// configuration file in the Fig. 6 grammar — the paper's compile-time
// deployment flow for constrained devices (§VIII). Feed the result to
// a new node via WithConfig (together with WithoutDefaultModules) to
// run exactly the module set this environment needs, skipping
// discovery.
func (n *Node) SuggestConfig() string { return n.inner.SuggestConfig() }

// RecoveryOutcome reports how the node's durable state recovered at
// startup: "warm" (snapshot and journal verified), "truncated" (a torn
// journal tail was dropped, the verified prefix applied) or "cold"
// (no usable prior state). Empty when the node runs without a state
// directory.
func (n *Node) RecoveryOutcome() string {
	if p := n.inner.Persistence(); p != nil {
		return string(p.Outcome())
	}
	return ""
}

// Close shuts the node down, draining the event bus, flushing and
// closing the traffic log, taking the final durable-state snapshot,
// and closing the collective layer.
func (n *Node) Close() error { return n.inner.Close() }
