// Command kalislint runs the Kalis static-analysis suite (see
// internal/lint): standard-library-only analyzers that enforce the
// repository's hot-path and simulator invariants.
//
// Usage:
//
//	kalislint [-C dir] [-json] [-baseline file] [./...]
//	kalislint [-C dir] ./internal/lint/testdata/<rule>/<case> ...
//	kalislint [-C dir] -callgraph HandlePacket
//
// With no arguments (or "./...") the whole module is linted with the
// production rule scopes. Directory arguments restrict the report to
// those directories; directories under a testdata tree are loaded
// explicitly (the module walk skips them) and checked against every
// rule, which is how the negative fixtures are exercised end to end.
//
// Findings print as "file:line:col: [rule] message" (or as a JSON
// array with -json); the exit status is 1 when any unsuppressed finding
// remains, 2 on load errors. -baseline filters out findings recorded in
// a committed baseline file (matched by file, rule and message — line
// numbers drift), supporting gradual adoption of new rules. -callgraph
// prints the devirtualized call graph reachable from every method of
// the given name, using the production hot-path scopes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kalis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("kalislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", ".", "module root to lint")
	rules := fs.Bool("rules", false, "print the rule set and exit")
	tests := fs.Bool("tests", true, "also lint _test.go files with the relaxed rule set")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	baseline := fs.String("baseline", "", "filter out findings recorded in this JSON baseline file")
	callgraph := fs.String("callgraph", "", "print the devirtualized call graph from every method with this name and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *rules {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Doc())
		}
		for _, a := range lint.TestFileAnalyzers() {
			fmt.Fprintf(stdout, "%-10s %s (test files)\n", a.Name(), a.Doc())
		}
		return 0
	}

	root, err := filepath.Abs(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "kalislint:", err)
		return 2
	}

	// Split the package patterns into fixture dirs (under testdata,
	// loaded explicitly) and report filters.
	var extraDirs, filters []string
	wholeModule := fs.NArg() == 0
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "all" {
			wholeModule = true
			continue
		}
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
		// A typoed directory must not silently lint nothing and pass.
		if info, err := os.Stat(filepath.Join(root, rel)); err != nil || !info.IsDir() {
			fmt.Fprintf(stderr, "kalislint: %s: not a directory under %s\n", arg, root)
			return 2
		}
		filters = append(filters, rel)
		if strings.Contains("/"+rel+"/", "/testdata/") {
			extraDirs = append(extraDirs, rel)
		}
	}

	target, err := lint.Load(root, extraDirs...)
	if err != nil {
		fmt.Fprintln(stderr, "kalislint:", err)
		return 2
	}

	if *callgraph != "" {
		// The production hot-path scopes: roots in internal/core, walk
		// spilling into the flow layer.
		dump := lint.DumpMethodGraph(target, *callgraph,
			lint.PathScope(target.Module+"/internal/core"),
			lint.PathScope(target.Module+"/internal/core", target.Module+"/internal/flow"))
		fmt.Fprint(stdout, dump)
		return 0
	}

	analyzers := lint.DefaultAnalyzers()
	for _, dir := range extraDirs {
		analyzers = append(analyzers, lint.FixtureAnalyzers(lint.PathScope(target.Module+"/"+dir))...)
	}

	findings := lint.Run(target, analyzers)
	if *tests {
		testTarget, err := lint.LoadTests(root)
		if err != nil {
			fmt.Fprintln(stderr, "kalislint:", err)
			return 2
		}
		findings = append(findings, lint.Run(testTarget, lint.TestFileAnalyzers())...)
	}
	if !wholeModule && len(filters) > 0 {
		findings = filterFindings(findings, root, filters)
	}
	if *baseline != "" {
		findings, err = applyBaseline(findings, root, *baseline)
		if err != nil {
			fmt.Fprintln(stderr, "kalislint:", err)
			return 2
		}
	}
	if *asJSON {
		if err := writeJSON(stdout, findings, root); err != nil {
			fmt.Fprintln(stderr, "kalislint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relFile(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "kalislint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the interchange form of a finding, also the baseline
// file format. File paths are module-root-relative with forward
// slashes, so baselines travel between checkouts.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// relFile renders a finding path module-root-relative.
func relFile(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// writeJSON emits the findings as an indented JSON array ("[]" when
// clean), the same shape -baseline reads back.
func writeJSON(stdout *os.File, findings []lint.Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relFile(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// applyBaseline drops findings recorded in the baseline file. Matching
// ignores line and column: a baseline entry forgives one finding with
// the same file, rule and message, however the file has shifted.
func applyBaseline(findings []lint.Finding, root, path string) ([]lint.Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []jsonFinding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	budget := make(map[[3]string]int, len(entries))
	for _, e := range entries {
		budget[[3]string{e.File, e.Rule, e.Message}]++
	}
	var out []lint.Finding
	for _, f := range findings {
		key := [3]string{relFile(root, f.Pos.Filename), f.Rule, f.Message}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		out = append(out, f)
	}
	return out, nil
}

// filterFindings keeps findings whose file lies under one of the given
// module-root-relative directories.
func filterFindings(findings []lint.Finding, root string, dirs []string) []lint.Finding {
	var out []lint.Finding
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, d := range dirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
