// Command kalislint runs the Kalis static-analysis suite (see
// internal/lint): standard-library-only analyzers that enforce the
// repository's hot-path and simulator invariants.
//
// Usage:
//
//	kalislint [-C dir] [./...]
//	kalislint [-C dir] ./internal/lint/testdata/<rule>/<case> ...
//
// With no arguments (or "./...") the whole module is linted with the
// production rule scopes. Directory arguments restrict the report to
// those directories; directories under a testdata tree are loaded
// explicitly (the module walk skips them) and checked against every
// rule, which is how the negative fixtures are exercised end to end.
//
// Findings print as "file:line:col: [rule] message"; the exit status is
// 1 when any unsuppressed finding remains, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"kalis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("kalislint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", ".", "module root to lint")
	rules := fs.Bool("rules", false, "print the rule set and exit")
	tests := fs.Bool("tests", true, "also lint _test.go files with the relaxed rule set")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *rules {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name(), a.Doc())
		}
		for _, a := range lint.TestFileAnalyzers() {
			fmt.Fprintf(stdout, "%-10s %s (test files)\n", a.Name(), a.Doc())
		}
		return 0
	}

	root, err := filepath.Abs(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "kalislint:", err)
		return 2
	}

	// Split the package patterns into fixture dirs (under testdata,
	// loaded explicitly) and report filters.
	var extraDirs, filters []string
	wholeModule := fs.NArg() == 0
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." || arg == "all" {
			wholeModule = true
			continue
		}
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(arg, "./")))
		// A typoed directory must not silently lint nothing and pass.
		if info, err := os.Stat(filepath.Join(root, rel)); err != nil || !info.IsDir() {
			fmt.Fprintf(stderr, "kalislint: %s: not a directory under %s\n", arg, root)
			return 2
		}
		filters = append(filters, rel)
		if strings.Contains("/"+rel+"/", "/testdata/") {
			extraDirs = append(extraDirs, rel)
		}
	}

	target, err := lint.Load(root, extraDirs...)
	if err != nil {
		fmt.Fprintln(stderr, "kalislint:", err)
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	for _, dir := range extraDirs {
		analyzers = append(analyzers, lint.FixtureAnalyzers(lint.PathScope(target.Module+"/"+dir))...)
	}

	findings := lint.Run(target, analyzers)
	if *tests {
		testTarget, err := lint.LoadTests(root)
		if err != nil {
			fmt.Fprintln(stderr, "kalislint:", err)
			return 2
		}
		findings = append(findings, lint.Run(testTarget, lint.TestFileAnalyzers())...)
	}
	if !wholeModule && len(filters) > 0 {
		findings = filterFindings(findings, root, filters)
	}
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "kalislint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// filterFindings keeps findings whose file lies under one of the given
// module-root-relative directories.
func filterFindings(findings []lint.Finding, root string, dirs []string) []lint.Finding {
	var out []lint.Finding
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, d := range dirs {
			if rel == d || strings.HasPrefix(rel, d+"/") {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
