// Command kalis-trace records built-in scenarios into Kalis trace
// files and inspects existing traces — the record/replay half of the
// paper's evaluation methodology (§VI-A).
//
// Usage:
//
//	kalis-trace -record icmp-flood -o flood.ktrc -episodes 5
//	kalis-trace -inspect flood.ktrc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"kalis/internal/eval"
	"kalis/internal/packet"
	"kalis/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kalis-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		record   = flag.String("record", "", "scenario to record (see kalis -list)")
		out      = flag.String("o", "capture.ktrc", "output trace file for -record/-merge")
		inspect  = flag.String("inspect", "", "trace file to summarize")
		mergeA   = flag.String("merge", "", "first trace to merge (with -with) by timestamp")
		mergeB   = flag.String("with", "", "second trace to merge")
		episodes = flag.Int("episodes", 5, "attack episodes to record")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	switch {
	case *record != "":
		return recordScenario(*record, *out, *seed, *episodes)
	case *inspect != "":
		return inspectTrace(*inspect)
	case *mergeA != "" && *mergeB != "":
		return mergeTraces(*mergeA, *mergeB, *out)
	default:
		return fmt.Errorf("pass -record <scenario>, -inspect <file>, or -merge <a> -with <b>")
	}
}

// mergeTraces interleaves two traces by timestamp — the §VI-A
// methodology of enhancing a clean capture with attack symptoms.
func mergeTraces(pathA, pathB, out string) error {
	read := func(path string) ([]*trace.Record, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadAll(f)
	}
	a, err := read(pathA)
	if err != nil {
		return err
	}
	b, err := read(pathB)
	if err != nil {
		return err
	}
	merged := trace.Merge(a, b)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for _, rec := range merged {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("merged %d + %d records into %s\n", len(a), len(b), out)
	return nil
}

func recordScenario(name, out string, seed int64, episodes int) error {
	sc, ok := eval.ScenarioByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q", name)
	}
	run := sc.Build(seed, episodes)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	var werr error
	run.Sniffer.Subscribe(func(c *packet.Captured) {
		raw := reencode(c)
		if raw == nil {
			return
		}
		rec := &trace.Record{Time: c.Time, Medium: c.Medium, RSSI: c.RSSI, Raw: raw, Truth: c.Truth}
		if err := w.Write(rec); err != nil && werr == nil {
			werr = err
		}
	})
	run.Sim.Run(run.End)
	if werr != nil {
		return werr
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d frames of %s into %s\n", w.Count(), sc.Name, out)
	return nil
}

// reencode rebuilds the raw frame from the outermost decoded layer.
func reencode(c *packet.Captured) []byte {
	if len(c.Layers) == 0 {
		return nil
	}
	type encoder interface{ Encode() []byte }
	if e, ok := c.Layers[0].(encoder); ok {
		return e.Encode()
	}
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	kinds := map[string]int{}
	attacks := map[string]int{}
	decodeErrs := 0
	for _, r := range recs {
		c, err := r.Decode()
		if err != nil {
			decodeErrs++
			continue
		}
		kinds[c.Kind.String()]++
		if r.Truth != nil {
			attacks[r.Truth.Attack]++
		}
	}
	first, last := recs[0].Time, recs[len(recs)-1].Time
	fmt.Printf("%s: %d frames, %v span, %d undecodable\n", path, len(recs), last.Sub(first), decodeErrs)
	fmt.Println("traffic by kind:")
	for _, k := range sortedKeys(kinds) {
		fmt.Printf("  %-20s %6d\n", k, kinds[k])
	}
	if len(attacks) > 0 {
		fmt.Println("labelled attack symptoms:")
		for _, a := range sortedKeys(attacks) {
			fmt.Printf("  %-20s %6d\n", a, attacks[a])
		}
	}
	return nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
