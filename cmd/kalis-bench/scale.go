package main

// The scale experiment measures aggregate ingestion throughput as the
// shard count grows — the system-level counterpart of
// BenchmarkKalisThroughput. Each row builds a fresh node with
// WithShards(n), pushes the same pre-decoded mixed-WSN workload from
// concurrent producers (one per shard, single producer at n=1 to
// honor the synchronous dispatch contract), drains, and scrapes the
// node's own live /metrics endpoint for the delivered-packet count,
// ingest drops and mean batch size — so the table reports what an
// operator's Prometheus would, not internal counters.

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"time"

	"kalis"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// scaleWorkload pre-decodes the capture set once: 64 distinct 802.15.4
// sources sending CTP data, the same shape as BenchmarkKalisThroughput.
func scaleWorkload() ([]*kalis.Captured, error) {
	var caps []*kalis.Captured
	for i := 0; i < 256; i++ {
		src := uint16(2 + i%64)
		raw := stack.BuildCTPData(src, 1, src, uint8(i), 0, 10, []byte{0x01, uint8(i)})
		c, err := stack.Decode(packet.MediumIEEE802154, raw)
		if err != nil {
			return nil, err
		}
		c.Time = netsim.Epoch.Add(time.Duration(i) * 10 * time.Millisecond)
		c.RSSI = -60 - float64(i%4)
		caps = append(caps, c)
	}
	return caps, nil
}

// runScale sweeps shard counts 1, 2, 4, ... up to maxShards and prints
// the shards-vs-throughput table.
func runScale(out io.Writer, maxShards, packets int) error {
	if maxShards < 1 {
		maxShards = 1
	}
	if packets <= 0 {
		packets = 200000
	}
	caps, err := scaleWorkload()
	if err != nil {
		return err
	}
	var counts []int
	for n := 1; n <= maxShards; n *= 2 {
		counts = append(counts, n)
	}
	if last := counts[len(counts)-1]; last != maxShards {
		counts = append(counts, maxShards)
	}

	fmt.Fprintf(out, "Scaling — sharded ingestion throughput (%d packets, 64 sources, lossless backpressure)\n", packets)
	fmt.Fprintf(out, "%-8s %-10s %-12s %-9s %-7s %s\n",
		"shards", "wall(s)", "pkts/s", "speedup", "drops", "mean-batch")
	var base float64
	for _, n := range counts {
		row, err := scaleRow(n, packets, caps)
		if err != nil {
			return err
		}
		if base == 0 {
			base = row.pktsPerSec
		}
		fmt.Fprintf(out, "%-8d %-10.3f %-12.0f %-9.2f %-7d %.1f\n",
			n, row.wall.Seconds(), row.pktsPerSec, row.pktsPerSec/base, row.drops, row.meanBatch)
	}
	return nil
}

type scaleResult struct {
	wall       time.Duration
	pktsPerSec float64
	drops      uint64
	meanBatch  float64
}

// scaleRow measures one shard count end to end and scrapes the node's
// live telemetry endpoint for the row's counters.
func scaleRow(shards, packets int, caps []*kalis.Captured) (*scaleResult, error) {
	opts := []kalis.Option{kalis.WithNodeID("K1")}
	if shards > 1 {
		opts = append(opts, kalis.WithShards(shards), kalis.WithIngestBlocking())
	}
	node, err := kalis.New(opts...)
	if err != nil {
		return nil, err
	}
	defer node.Close()
	srv, err := node.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// Warm up knowledge-driven module activation outside the clock.
	for _, c := range caps {
		node.HandleCapture(c)
	}
	node.DrainIngest()

	producers := shards
	if producers < 1 {
		producers = 1
	}
	per := packets / producers
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			i := p * 64
			for j := 0; j < per; j++ {
				node.HandleCapture(caps[i%len(caps)])
				i++
			}
		}(p)
	}
	wg.Wait()
	node.DrainIngest()
	wall := time.Since(start)

	scrape, err := httpGet("http://" + srv.Addr() + "/metrics")
	if err != nil {
		return nil, err
	}
	res := &scaleResult{
		wall:       wall,
		pktsPerSec: float64(per*producers) / wall.Seconds(),
		drops:      uint64(promSum(scrape, `kalis_ingest_drops_total\{shard="\d+"\}`)),
	}
	if count := promSum(scrape, `kalis_ingest_batch_size_count`); count > 0 {
		res.meanBatch = promSum(scrape, `kalis_ingest_batch_size_sum`) / count
	}
	return res, nil
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// promSum sums the sample values of every exposition line whose metric
// (with labels) matches the pattern.
func promSum(exposition, pattern string) float64 {
	re := regexp.MustCompile(`(?m)^` + pattern + ` (\S+)$`)
	var sum float64
	for _, m := range re.FindAllStringSubmatch(exposition, -1) {
		v, err := strconv.ParseFloat(m[len(m)-1], 64)
		if err == nil {
			sum += v
		}
	}
	return sum
}
