package main

// The fleet experiment measures the collective layer at scale:
// anti-entropy digest gossip (delta sync, capped fan-out) against the
// legacy snapshot-push protocol, on fleets of 1k-10k simulated nodes.
// Each row runs one fleet, then scrapes the run's own live /metrics
// endpoint for the kalis_collective_* totals — the table reports what
// an operator's Prometheus would see, not internal counters. A second
// table drills convergence under a half/half partition and a link-loss
// probability grid.

import (
	"fmt"
	"io"

	"kalis/internal/fleet"
	"kalis/internal/telemetry"
)

// fleetRow runs one configuration with a fresh registry and returns
// the result plus the scraped fleet-wide byte counter.
func fleetRow(cfg fleet.Config) (*fleet.Result, float64, error) {
	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	srv, err := telemetry.ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		return nil, 0, err
	}
	defer srv.Close()
	res, err := fleet.Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	scrape, err := httpGet("http://" + srv.Addr() + "/metrics")
	if err != nil {
		return nil, 0, err
	}
	return res, promSum(scrape, `kalis_collective_bytes_sent_total`), nil
}

func runFleet(out io.Writer, seed int64) error {
	fmt.Fprintln(out, "Fleet scaling — anti-entropy digest gossip vs legacy snapshot push")
	fmt.Fprintln(out, "(bytes are live kalis_collective_bytes_sent_total scrapes; 30 updates/key churned over 3 gossip ticks)")
	fmt.Fprintf(out, "%-7s %-7s %-7s %-11s %-11s %-13s %-9s %-8s\n",
		"nodes", "mode", "rounds", "converged", "bytes(MB)", "bytes/node", "digests", "deltas")

	type row struct {
		nodes  int
		legacy bool
	}
	rows := []row{{1000, false}, {4000, false}, {10000, false}, {1000, true}}
	var gossip1k, legacy1k float64
	for _, r := range rows {
		res, bytes, err := fleetRow(fleet.Config{Nodes: r.nodes, LegacyPush: r.legacy, Seed: seed})
		if err != nil {
			return err
		}
		mode := "gossip"
		if r.legacy {
			mode = "legacy"
			if r.nodes == 1000 {
				legacy1k = bytes
			}
		} else if r.nodes == 1000 {
			gossip1k = bytes
		}
		fmt.Fprintf(out, "%-7d %-7s %-7d %-11s %-11.2f %-13s %-9d %-8d\n",
			r.nodes, mode, res.Rounds,
			fmt.Sprintf("%d/%d", res.ConvergedNodes, res.Nodes),
			bytes/1e6,
			fmt.Sprintf("%.1fKB", bytes/float64(r.nodes)/1e3),
			res.Digests, res.Deltas)
	}
	if gossip1k > 0 {
		fmt.Fprintf(out, "bytes ratio at 1k nodes: legacy/gossip = %.1fx\n\n", legacy1k/gossip1k)
	}

	// Convergence curve at 1k under a 10-round half/half partition.
	res, _, err := fleetRow(fleet.Config{Nodes: 1000, Seed: seed, PartitionRounds: 10})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "Convergence under partition — 1k nodes, halves split for 10 rounds, then healed")
	fmt.Fprintf(out, "%-7s %-11s %-11s\n", "round", "converged", "cum-MB")
	for _, s := range res.Curve {
		if s.Round <= 3 || s.Round%2 == 0 || s.Round == res.Rounds {
			fmt.Fprintf(out, "%-7d %-11d %-11.2f\n", s.Round, s.Converged, float64(s.Bytes)/1e6)
		}
	}
	fmt.Fprintln(out)

	// Fault matrix at 512 nodes: loss probability x partition drill.
	fmt.Fprintln(out, "Fault matrix — 512 nodes, rounds to full convergence")
	fmt.Fprintf(out, "%-9s %-11s %-9s %-11s\n", "loss", "partition", "rounds", "converged")
	for _, loss := range []float64{0, 0.05, 0.2} {
		for _, part := range []int{0, 8} {
			res, err := fleet.Run(fleet.Config{
				Nodes: 512, Seed: seed, LossProb: loss, PartitionRounds: part,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-9.2f %-11d %-9d %-11s\n",
				loss, part, res.Rounds, fmt.Sprintf("%d/%d", res.ConvergedNodes, res.Nodes))
		}
	}
	return nil
}
