// Command kalis-bench regenerates every table and figure of the
// paper's evaluation (§VI): Table I, Figure 3, Table II, Figure 8, and
// the reactivity (§VI-C), knowledge-sharing (§VI-D) and countermeasure
// (§VI-B1) experiments.
//
// Usage:
//
//	kalis-bench -exp all
//	kalis-bench -exp table2 -episodes 50 -seed 1
//	kalis-bench -exp fig8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"kalis/internal/eval"
	"kalis/internal/taxonomy"
	"kalis/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kalis-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp           = flag.String("exp", "all", "experiment: table1|fig3|table2|fig8|reactivity|wormhole|countermeasure|overhead|delivery|scale|fleet|all (scale and fleet run only when named)")
		episodes      = flag.Int("episodes", 0, "symptom instances per scenario (0 = paper default of 50)")
		seed          = flag.Int64("seed", 1, "simulation seed")
		rules         = flag.Int("snort-rules", 0, "snort-like community ruleset size (0 = default 3000)")
		telemetryAddr = flag.String("telemetry", "", "serve process-wide runtime metrics and pprof on this address while the experiments run")
		shards        = flag.Int("shards", runtime.NumCPU(), "max ingestion shard count for -exp scale (sweeps 1,2,4,... up to this)")
		packets       = flag.Int("packets", 200000, "packets per row for -exp scale")
	)
	flag.Parse()

	opts := eval.Options{Seed: *seed, Episodes: *episodes, SnortCommunityRules: *rules}
	out := os.Stdout

	if *telemetryAddr != "" {
		// Experiments build many short-lived nodes internally, so the
		// bench endpoint exposes process-wide runtime metrics (heap,
		// goroutines, GC) plus pprof — the knobs needed to profile an
		// experiment run; per-node packet metrics live on cmd/kalis.
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		srv, err := telemetry.ServeAdmin(*telemetryAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}

	want := func(name string) bool { return *exp == name || *exp == "all" }
	ran := false

	if want("table1") {
		ran = true
		fmt.Fprintln(out, "Table I — taxonomy of IoT attacks by target")
		taxonomy.WriteTableI(out)
		fmt.Fprintln(out)
	}
	if want("fig3") {
		ran = true
		fmt.Fprintln(out, "Figure 3 — relationships between network/device features and attacks")
		taxonomy.WriteFigure3(out)
		fmt.Fprintln(out)
	}
	if want("table2") {
		ran = true
		res, err := eval.Table2(opts)
		if err != nil {
			return err
		}
		eval.WriteTable2(out, res)
		fmt.Fprintln(out)
	}
	if want("fig8") {
		ran = true
		res, err := eval.Fig8(opts)
		if err != nil {
			return err
		}
		eval.WriteFig8(out, res)
		fmt.Fprintln(out)
	}
	if want("reactivity") {
		ran = true
		res, err := eval.Reactivity(opts)
		if err != nil {
			return err
		}
		eval.WriteReactivity(out, res)
		fmt.Fprintln(out)
	}
	if want("wormhole") {
		ran = true
		res, err := eval.KnowledgeSharing(opts)
		if err != nil {
			return err
		}
		eval.WriteKnowledgeSharing(out, res)
		fmt.Fprintln(out)
	}
	if want("countermeasure") {
		ran = true
		res, err := eval.Countermeasure(opts)
		if err != nil {
			return err
		}
		eval.WriteCountermeasure(out, res)
		fmt.Fprintln(out)
	}
	if want("overhead") {
		ran = true
		res, err := eval.ModuleOverhead(opts)
		if err != nil {
			return err
		}
		eval.WriteModuleOverhead(out, res)
		fmt.Fprintln(out)
	}
	if want("delivery") {
		ran = true
		res, err := eval.DeliveryImpact(opts)
		if err != nil {
			return err
		}
		eval.WriteDelivery(out, res)
		fmt.Fprintln(out)
	}
	// scale and fleet are wall-clock demos over large node counts, not
	// evaluation tables: they run only when named, never as -exp all.
	if *exp == "scale" {
		ran = true
		if err := runScale(out, *shards, *packets); err != nil {
			return err
		}
	}
	if *exp == "fleet" {
		ran = true
		if err := runFleet(out, *seed); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
