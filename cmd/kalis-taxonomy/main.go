// Command kalis-taxonomy prints the paper's IoT threat taxonomies:
// Table I (attack patterns by source and target) and Figure 3 (the
// feature/attack relationships that ground knowledge-driven
// detection).
package main

import (
	"flag"
	"fmt"
	"os"

	"kalis/internal/taxonomy"
)

func main() {
	features := flag.Bool("features", false, "print the Figure 3 feature/attack matrix instead of Table I")
	both := flag.Bool("all", false, "print both taxonomies")
	flag.Parse()

	if *both || !*features {
		fmt.Println("Table I — taxonomy of IoT attacks by target")
		taxonomy.WriteTableI(os.Stdout)
		fmt.Println()
	}
	if *both || *features {
		fmt.Println("Figure 3 — relationships between network/device features and attacks")
		taxonomy.WriteFigure3(os.Stdout)
	}
}
