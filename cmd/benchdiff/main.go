// Command benchdiff guards the hot-path performance budget: it re-runs
// the benchmarks recorded in bench_baseline.json and fails when any of
// them regressed by more than the configured threshold in ns/op.
//
// Each baseline suite names a package and an anchored -bench regex;
// benchdiff executes `go test -run ^$ -bench <regex> -count N` for the
// suite and keeps the minimum ns/op per benchmark across the N runs —
// the minimum is the least noisy estimator of the true cost, since
// scheduling jitter only ever adds time.
//
// Usage:
//
//	go run ./cmd/benchdiff                # compare against the baseline
//	go run ./cmd/benchdiff -update        # re-measure and rewrite it
//	go run ./cmd/benchdiff -threshold 0.1 # tighten the gate
//
// Exit status: 0 when every benchmark is within budget, 1 on
// regression or missing benchmark, 2 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baseline is the on-disk format of bench_baseline.json.
type baseline struct {
	// Count is how many times each suite is run; the per-benchmark
	// minimum across runs is compared.
	Count int `json:"count"`
	// Threshold is the tolerated fractional ns/op increase (0.25 =
	// +25%) before the gate fails.
	Threshold float64 `json:"threshold"`
	Suites    []suite `json:"suites"`
}

type suite struct {
	// Package is the go test target, e.g. "./internal/telemetry".
	Package string `json:"package"`
	// Bench is the anchored regex handed to -bench.
	Bench string `json:"bench"`
	// NsPerOp maps canonical benchmark names (sub-benchmarks
	// included, GOMAXPROCS suffix stripped) to the recorded minimum.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "bench_baseline.json", "baseline file")
		update       = flag.Bool("update", false, "re-measure and rewrite the baseline instead of comparing")
		count        = flag.Int("count", 0, "override the baseline run count")
		threshold    = flag.Float64("threshold", 0, "override the baseline regression threshold")
		benchtime    = flag.String("benchtime", "", "forwarded to go test -benchtime")
	)
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatalf("benchdiff: %v", err)
	}
	if *count > 0 {
		base.Count = *count
	}
	if *threshold > 0 {
		base.Threshold = *threshold
	}

	failed := false
	for i := range base.Suites {
		s := &base.Suites[i]
		measured, err := runSuite(s, base.Count, *benchtime)
		if err != nil {
			fatalf("benchdiff: %s: %v", s.Package, err)
		}
		if *update {
			s.NsPerOp = measured
			continue
		}
		if !compareSuite(s, measured, base.Threshold) {
			failed = true
		}
	}

	if *update {
		if err := writeBaseline(*baselinePath, base); err != nil {
			fatalf("benchdiff: %v", err)
		}
		fmt.Printf("wrote %s\n", *baselinePath)
		return
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all benchmarks within %+.0f%% of baseline\n", base.Threshold*100)
}

func loadBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Count <= 0 {
		b.Count = 5
	}
	if b.Threshold <= 0 {
		b.Threshold = 0.25
	}
	return &b, nil
}

func writeBaseline(path string, b *baseline) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runSuite executes the suite's benchmarks Count times and returns the
// per-benchmark minimum ns/op.
func runSuite(s *suite, count int, benchtime string) (map[string]float64, error) {
	args := []string{"test", "-run", "^$", "-bench", s.Bench, "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, s.Package)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	measured := parseBenchOutput(string(out))
	if len(measured) == 0 {
		return nil, fmt.Errorf("no benchmark results for -bench %s (output: %q)", s.Bench, string(out))
	}
	return measured, nil
}

// procSuffix is the trailing -GOMAXPROCS the bench framework appends to
// every benchmark name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts minimum ns/op per benchmark from `go test
// -bench` output lines of the form:
//
//	BenchmarkName/sub-8   12345   92.36 ns/op   0 B/op
func parseBenchOutput(out string) map[string]float64 {
	min := make(map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		idx := -1
		for i, f := range fields {
			if f == "ns/op" {
				idx = i
				break
			}
		}
		if idx < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[idx-1], 64)
		if err != nil {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		if prev, ok := min[name]; !ok || v < prev {
			min[name] = v
		}
	}
	return min
}

// compareSuite reports the per-benchmark verdicts and returns false if
// any baseline benchmark regressed beyond threshold or disappeared.
func compareSuite(s *suite, measured map[string]float64, threshold float64) bool {
	ok := true
	names := make([]string, 0, len(s.NsPerOp))
	for name := range s.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := s.NsPerOp[name]
		got, found := measured[name]
		switch {
		case !found:
			fmt.Printf("MISSING  %-55s baseline %10.2f ns/op, benchmark no longer runs\n", name, base)
			ok = false
		case base > 0 && got > base*(1+threshold):
			fmt.Printf("REGRESS  %-55s %10.2f -> %10.2f ns/op (%+.1f%%, budget %+.0f%%)\n",
				name, base, got, (got/base-1)*100, threshold*100)
			ok = false
		default:
			delta := 0.0
			if base > 0 {
				delta = (got/base - 1) * 100
			}
			fmt.Printf("ok       %-55s %10.2f -> %10.2f ns/op (%+.1f%%)\n", name, base, got, delta)
		}
	}
	for name := range measured {
		if _, known := s.NsPerOp[name]; !known {
			fmt.Printf("NEW      %-55s %10.2f ns/op (not in baseline; run -update to record)\n",
				name, measured[name])
		}
	}
	return ok
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
