// Command kalis runs a Kalis IDS node against one of the built-in
// simulated IoT scenarios, or replays a recorded trace file through
// it, printing knowledge discoveries, module activations, and alerts
// as they happen.
//
// Usage:
//
//	kalis -scenario icmp-flood -episodes 5
//	kalis -scenario selective-forwarding -verbose
//	kalis -trace capture.ktrc
//	kalis -scenario smurf -config my.kalis.conf
//	kalis -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kalis"
	"kalis/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kalis:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario   = flag.String("scenario", "", "built-in scenario to simulate (see -list)")
		traceFile  = flag.String("trace", "", "replay a recorded .ktrc trace instead of simulating")
		configFile = flag.String("config", "", "Kalis configuration file (Fig. 6 grammar)")
		episodes   = flag.Int("episodes", 5, "attack episodes to simulate")
		seed       = flag.Int64("seed", 1, "simulation seed")
		verbose    = flag.Bool("verbose", false, "print knowledge discoveries and module activations")
		trad       = flag.Bool("traditional", false, "run as the traditional-IDS baseline (no knowledge)")
		list       = flag.Bool("list", false, "list built-in scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range eval.AllScenarios() {
			fmt.Printf("  %-28s attack=%s medium=%s\n", sc.Name, sc.Attack, sc.Medium)
		}
		return nil
	}

	opts := []kalis.Option{kalis.WithNodeID("K1")}
	if *trad {
		opts = append(opts, kalis.WithoutKnowledge())
	}
	if *configFile != "" {
		text, err := os.ReadFile(*configFile)
		if err != nil {
			return err
		}
		opts = append(opts, kalis.WithConfig(string(text)))
	}
	node, err := kalis.New(opts...)
	if err != nil {
		return err
	}
	defer node.Close()

	alerts := 0
	node.OnAlert(func(a kalis.Alert) {
		alerts++
		fmt.Printf("%s ALERT %-20s victim=%-14s suspects=%v conf=%.2f — %s\n",
			a.Time.Format("15:04:05.000"), a.Attack, a.Victim, a.Suspects, a.Confidence, a.Details)
	})
	if *verbose {
		node.OnKnowledge(func(kg kalis.Knowgget) {
			if strings.HasPrefix(kg.Label, "TrafficFrequency") || strings.HasPrefix(kg.Label, "SignalStrength") {
				return // too chatty for a console
			}
			entity := ""
			if kg.Entity != "" {
				entity = "@" + kg.Entity
			}
			fmt.Printf("              KNOWLEDGE %s$%s%s = %q\n", kg.Creator, kg.Label, entity, kg.Value)
		})
	}

	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		replayed, skipped, err := node.ReplayTrace(f)
		if err != nil {
			return err
		}
		fmt.Printf("replayed %d frames (%d skipped), %d alerts\n", replayed, skipped, alerts)

	case *scenario != "":
		sc, ok := eval.ScenarioByName(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", *scenario)
		}
		run := sc.Build(*seed, *episodes)
		run.Sniffer.Subscribe(node.HandleCapture)
		fmt.Printf("simulating %s with %d attack episodes...\n", sc.Name, *episodes)
		run.Sim.Run(run.End)
		fmt.Printf("\ncaptured %d frames, raised %d alerts\n", run.Sniffer.Captures, alerts)
		fmt.Printf("active modules at end: %s\n", strings.Join(node.ActiveModules(), ", "))

	default:
		return fmt.Errorf("pass -scenario, -trace, or -list")
	}
	return nil
}
