// Command kalis runs a Kalis IDS node against one of the built-in
// simulated IoT scenarios, or replays a recorded trace file through
// it, printing knowledge discoveries, module activations, and alerts
// as they happen. With -telemetry the node serves its runtime metrics
// (Prometheus exposition, JSON snapshot, pprof) on an HTTP admin
// endpoint, and keeps it up after the run until interrupted so the
// final state can be scraped.
//
// Usage:
//
//	kalis -scenario icmp-flood/single-hop -episodes 5
//	kalis -scenario selective-forwarding/wsn -verbose
//	kalis -trace capture.ktrc -telemetry 127.0.0.1:9090
//	kalis -scenario smurf/multi-hop -config my.kalis.conf
//	kalis -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kalis"
	"kalis/internal/eval"
)

// syncWriter serializes output lines: with -shards > 1 alert and
// knowledge callbacks fire from shard worker goroutines concurrently.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kalis:", err)
		os.Exit(1)
	}
}

// telemetryHook, when set (by tests), runs after traffic has flowed
// and before the admin endpoint shuts down, with the endpoint's bound
// address.
var telemetryHook func(addr string)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kalis", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		scenario      = fs.String("scenario", "", "built-in scenario to simulate (see -list)")
		traceFile     = fs.String("trace", "", "replay a recorded .ktrc trace instead of simulating")
		configFile    = fs.String("config", "", "Kalis configuration file (Fig. 6 grammar)")
		episodes      = fs.Int("episodes", 5, "attack episodes to simulate")
		seed          = fs.Int64("seed", 1, "simulation seed")
		verbose       = fs.Bool("verbose", false, "print knowledge discoveries and module activations")
		trad          = fs.Bool("traditional", false, "run as the traditional-IDS baseline (no knowledge)")
		list          = fs.Bool("list", false, "list built-in scenarios and exit")
		telemetryAddr = fs.String("telemetry", "", "serve the runtime-telemetry admin endpoint on this address (e.g. 127.0.0.1:9090)")
		stateDir      = fs.String("state-dir", "", "persist node state in this directory and warm-restart from it (empty: no persistence)")
		shards        = fs.Int("shards", runtime.NumCPU(), "ingestion shards (1 = synchronous dispatch; default scales to the CPU count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stdout = &syncWriter{w: stdout}

	if *list {
		for _, sc := range eval.AllScenarios() {
			fmt.Fprintf(stdout, "  %-28s attack=%s medium=%s\n", sc.Name, sc.Attack, sc.Medium)
		}
		return nil
	}

	opts := []kalis.Option{kalis.WithNodeID("K1")}
	if *trad {
		opts = append(opts, kalis.WithoutKnowledge())
	}
	if *configFile != "" {
		text, err := os.ReadFile(*configFile)
		if err != nil {
			return err
		}
		opts = append(opts, kalis.WithConfig(string(text)))
	}
	if *stateDir != "" {
		opts = append(opts, kalis.WithStateDir(*stateDir))
	}
	if *shards > 1 {
		// Scenario and trace runs are offline replay: lossless
		// backpressure (every frame observed), paced so no shard
		// worker races whole attack episodes ahead of the knowledge
		// the other shards are still deriving.
		opts = append(opts, kalis.WithShards(*shards),
			kalis.WithIngestBlocking(),
			kalis.WithIngestMaxSkew(time.Second))
	}
	node, err := kalis.New(opts...)
	if err != nil {
		return err
	}
	defer node.Close()
	if *stateDir != "" {
		fmt.Fprintf(stdout, "state: %s restart from %s\n", node.RecoveryOutcome(), *stateDir)
	}

	if *telemetryAddr != "" {
		srv, err := node.ServeTelemetry(*telemetryAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "telemetry: serving http://%s/metrics\n", srv.Addr())
		if telemetryHook != nil {
			defer telemetryHook(srv.Addr())
		}
	}

	var alerts atomic.Int64
	node.OnAlert(func(a kalis.Alert) {
		alerts.Add(1)
		fmt.Fprintf(stdout, "%s ALERT %-20s victim=%-14s suspects=%v conf=%.2f — %s\n",
			a.Time.Format("15:04:05.000"), a.Attack, a.Victim, a.Suspects, a.Confidence, a.Details)
	})
	if *verbose {
		node.OnKnowledge(func(kg kalis.Knowgget) {
			if strings.HasPrefix(kg.Label, "TrafficFrequency") || strings.HasPrefix(kg.Label, "SignalStrength") {
				return // too chatty for a console
			}
			entity := ""
			if kg.Entity != "" {
				entity = "@" + kg.Entity
			}
			fmt.Fprintf(stdout, "              KNOWLEDGE %s$%s%s = %q\n", kg.Creator, kg.Label, entity, kg.Value)
		})
	}

	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		replayed, skipped, err := node.ReplayTrace(f)
		if err != nil {
			return err
		}
		node.DrainIngest()
		fmt.Fprintf(stdout, "replayed %d frames (%d skipped), %d alerts\n", replayed, skipped, alerts.Load())

	case *scenario != "":
		sc, ok := eval.ScenarioByName(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", *scenario)
		}
		run := sc.Build(*seed, *episodes)
		run.Sniffer.Subscribe(node.HandleCapture)
		fmt.Fprintf(stdout, "simulating %s with %d attack episodes...\n", sc.Name, *episodes)
		run.Sim.Run(run.End)
		node.DrainIngest()
		fmt.Fprintf(stdout, "\ncaptured %d frames, raised %d alerts\n", run.Sniffer.Captures, alerts.Load())
		fmt.Fprintf(stdout, "active modules at end: %s\n", strings.Join(node.ActiveModules(), ", "))

	default:
		return fmt.Errorf("pass -scenario, -trace, or -list")
	}

	// Scenario runs finish in milliseconds; if the operator asked for
	// the admin endpoint, hold it open so it can actually be scraped.
	// Tests drive the endpoint through telemetryHook instead.
	if *telemetryAddr != "" && telemetryHook == nil {
		fmt.Fprintf(stdout, "telemetry: endpoint stays up — Ctrl-C to exit\n")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		signal.Stop(ch)
	}
	return nil
}
