package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"icmp-flood", "sinkhole/wsn", "attack=", "medium="} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunNoArgs(t *testing.T) {
	var sb strings.Builder
	err := run(nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "-scenario") {
		t.Errorf("err = %v, want usage error", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scenario", "no-such-attack"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("err = %v, want unknown-scenario error", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-no-such-flag"}, &sb); err == nil {
		t.Error("bad flag must return an error")
	}
}

func TestRunScenario(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scenario", "icmp-flood", "-episodes", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "captured") || !strings.Contains(out, "ALERT") {
		t.Errorf("scenario run output:\n%s", out)
	}
}

// TestRunScenarioSharded pins detection parity between the sharded and
// synchronous pipelines. The flood scenarios spoof many source
// identities, so source-hash sharding scatters each attack across
// every shard — parity needs the shared endpoint trackers
// (flow.Trackers), the window-level alert gate (one burst, one alert),
// reader-relative window counting (a shard ahead of the replay must
// not destroy a laggard's evidence), default-vs-evidence knowledge
// provenance (a shard's single-hop declaration must not clobber
// another's forwarding proof — smurf), and ingest skew pacing (module
// activation knowledge must not lag whole episodes behind a racing
// worker). Multi-core CI runs the sharded path by default (-shards
// NumCPU), so a regression here also breaks TestRunScenario there.
func TestRunScenarioSharded(t *testing.T) {
	alerts := func(args ...string) string {
		t.Helper()
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		out := sb.String()
		m := regexp.MustCompile(`raised (\d+) alerts`).FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("no alert summary in output:\n%s", out)
		}
		return m[1]
	}
	for _, sc := range []string{"icmp-flood", "syn-flood", "smurf"} {
		sync := alerts("-scenario", sc, "-episodes", "3", "-shards", "1")
		for _, shards := range []string{"2", "4"} {
			sharded := alerts("-scenario", sc, "-episodes", "3", "-shards", shards)
			if sharded == "0" {
				t.Errorf("%s: sharded (-shards %s) run raised no alerts — endpoint evidence is not shared across shards", sc, shards)
			} else if sharded != sync {
				t.Errorf("%s: -shards %s raised %s alerts, synchronous run %s — want parity", sc, shards, sharded, sync)
			}
		}
	}
}

// TestRunScenarioWithTelemetry drives the full startup-shutdown path
// with -telemetry and scrapes the live admin endpoint after traffic
// replay: packet and module-latency metrics must be non-zero.
func TestRunScenarioWithTelemetry(t *testing.T) {
	var scraped, scrapedJSON string
	telemetryHook = func(addr string) {
		scraped = get(t, "http://"+addr+"/metrics")
		scrapedJSON = get(t, "http://"+addr+"/metrics.json")
	}
	defer func() { telemetryHook = nil }()

	var sb strings.Builder
	err := run([]string{"-scenario", "icmp-flood", "-episodes", "3", "-telemetry", "127.0.0.1:0"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "telemetry: serving http://") {
		t.Errorf("missing telemetry banner:\n%s", sb.String())
	}

	packets := promValue(t, scraped, "kalis_packets_total")
	if packets == "" || packets == "0" {
		t.Errorf("kalis_packets_total = %q, want non-zero; scrape:\n%s", packets, scraped)
	}
	if !regexp.MustCompile(`kalis_module_packet_seconds_count\{module="[^"]+"\} [1-9]`).
		MatchString(scraped) {
		t.Errorf("no non-zero module-latency metric in scrape:\n%s", scraped)
	}
	if !strings.Contains(scraped, `kalis_alerts_total{attack="icmp-flood"}`) {
		t.Errorf("no icmp-flood alert counter in scrape:\n%s", scraped)
	}

	var snap map[string]struct {
		Type  string      `json:"type"`
		Value interface{} `json:"value"`
	}
	if err := json.Unmarshal([]byte(scrapedJSON), &snap); err != nil {
		t.Fatalf("/metrics.json: %v\n%s", err, scrapedJSON)
	}
	if v, ok := snap["kalis_packets_total"]; !ok || v.Type != "counter" {
		t.Errorf("JSON snapshot missing kalis_packets_total: %+v", snap)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promValue extracts the sample value of an unlabeled metric from a
// Prometheus text exposition.
func promValue(t *testing.T, exposition, name string) string {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).
		FindStringSubmatch(exposition)
	if m == nil {
		return ""
	}
	return m[1]
}
