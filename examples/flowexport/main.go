// Flow-export demo: attach a Kalis node to a simulated ICMP-flood
// scenario and consume the flow records the node exports as flows
// expire — the per-flow feature summaries (rates, inter-arrival and
// RSSI statistics, CTP header drift) a downstream collector or
// anomaly-detection stage would ingest. Closing the node flushes the
// residual flows, so every overheard flow is accounted for.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"kalis"
	"kalis/internal/eval"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	node, err := kalis.New(kalis.WithNodeID("K1"))
	if err != nil {
		return err
	}

	var mu sync.Mutex
	var records []kalis.FlowRecord
	node.OnFlowRecord(func(r kalis.FlowRecord) {
		mu.Lock()
		records = append(records, r)
		mu.Unlock()
	})

	sc, _ := eval.ScenarioByName("icmp-flood")
	run := sc.Build(1, 3)
	run.Sniffer.Subscribe(node.HandleCapture)
	fmt.Printf("replaying %s...\n\n", sc.Name)
	run.Sim.Run(run.End)

	// Close flushes the flow table: every still-live flow is exported
	// with reason "shutdown".
	if err := node.Close(); err != nil {
		return err
	}

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(records, func(i, j int) bool {
		return records[i].Key.String() < records[j].Key.String()
	})
	fmt.Printf("%d flow records exported:\n", len(records))
	for _, r := range records {
		fmt.Printf("  %-40s %-8s pkts=%-5d dur=%-6s", r.Key, r.Reason, r.Packets, r.Last.Sub(r.First))
		for _, v := range r.Features {
			fmt.Printf(" %s=%.3g", v.Name, v.V)
		}
		fmt.Println()
	}
	return nil
}
