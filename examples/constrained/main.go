// Constrained demonstrates the paper's §VIII future-work deployment
// flow: a full Kalis node observes a network, distills its knowledge
// into a fixed configuration (SuggestConfig), and a "very small
// device" then runs exactly that configuration — the right detection
// modules with the network features pinned as a-priori knowledge, no
// discovery machinery at all.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"kalis"
	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Phase 1: a full Kalis node learns the environment.
	sim := netsim.New(17)
	sniffer := sim.AddSniffer("kalis", netsim.Position{X: 50, Y: 15})
	motes := devices.BuildWSNLine(sim, 6, 20)
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}
	full, err := kalis.New(kalis.WithNodeID("scout"))
	if err != nil {
		return err
	}
	defer full.Close()
	sniffer.Subscribe(full.HandleCapture)
	sim.RunFor(2 * time.Minute)

	cfg := full.SuggestConfig()
	fmt.Println("configuration distilled by the scout node:")
	fmt.Println(cfg)

	// Phase 2: deploy the fixed configuration on a constrained node —
	// no default module library, no discovery, just the distilled set.
	tiny, err := kalis.New(
		kalis.WithNodeID("tiny"),
		kalis.WithoutDefaultModules(),
		kalis.WithConfig(cfg),
	)
	if err != nil {
		return err
	}
	defer tiny.Close()
	fmt.Printf("constrained node boots with modules: %v\n\n", tiny.ActiveModules())
	tiny.OnAlert(func(a kalis.Alert) {
		fmt.Printf("[%s] tiny node ALERT %s suspects=%v\n",
			a.Time.Format("15:04:05"), a.Attack, a.Suspects)
	})
	sniffer.Subscribe(tiny.HandleCapture)

	// The attack arrives after deployment; the constrained node
	// catches it with its fixed module set.
	inj := &attacks.SelectiveForwarding{Relay: motes[1], Rand: rand.New(rand.NewSource(2))}
	inj.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(30 * time.Second),
		Count: 2, Every: 75 * time.Second, Duration: 30 * time.Second,
	})
	sim.RunFor(4 * time.Minute)

	fmt.Printf("\nalerts from the constrained node: %d\n", len(tiny.Alerts()))
	return nil
}
