// Quickstart: build a tiny simulated IoT network, attach a Kalis node
// to its promiscuous sniffer, inject an ICMP flood, and watch Kalis
// discover the network and raise an alert.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"kalis"
	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A simulated WiFi segment: a victim host, one background device,
	// and an attacker platform.
	sim := netsim.New(42)
	sniffer := sim.AddSniffer("kalis-port", netsim.Position{}) // all mediums

	victim := sim.AddNode(&netsim.Node{
		Name: "victim", IP: netip.MustParseAddr("192.168.1.10"),
		Pos: netsim.Position{X: 10},
	})
	devices.NewIPHost(victim)

	bulbNode := sim.AddNode(&netsim.Node{
		Name: "bulb", IP: netip.MustParseAddr("192.168.1.12"),
		Pos: netsim.Position{X: 18},
	})
	devices.NewBulb(bulbNode).Start(sim.Now().Add(time.Second))

	// The attacker is a compromised device: its own benign traffic
	// teaches Kalis its RSSI fingerprint, which later pins the spoofed
	// flood on it.
	attacker := sim.AddNode(&netsim.Node{
		Name: "attacker", IP: netip.MustParseAddr("192.168.1.66"),
		Pos: netsim.Position{X: 30},
	})
	devices.NewBulb(attacker).Start(sim.Now().Add(2 * time.Second))

	// The Kalis node: knowledge-driven, full module library.
	node, err := kalis.New(kalis.WithNodeID("K1"))
	if err != nil {
		return err
	}
	defer node.Close()

	node.OnAlert(func(a kalis.Alert) {
		fmt.Printf("ALERT: %s against %s (suspects %v, confidence %.2f)\n",
			a.Attack, a.Victim, a.Suspects, a.Confidence)
	})
	sniffer.Subscribe(node.HandleCapture)

	// Inject one flood episode after a warm-up period.
	inj := &attacks.ICMPFlood{
		Attacker: attacker,
		Victim:   victim.IP,
		Spoofed:  []netip.Addr{netip.MustParseAddr("192.168.1.12")},
	}
	inj.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(30 * time.Second),
		Count: 1, Every: time.Minute, Duration: 3 * time.Second,
	})

	sim.RunFor(time.Minute)

	fmt.Println("\nwhat Kalis learned about the network:")
	for _, kg := range node.Knowledge() {
		if kg.Label == "Multihop" || kg.Label == "MonitoredNodes" || kg.Label == "Mobility" {
			fmt.Printf("  %s = %s\n", kg.Label, kg.Value)
		}
	}
	fmt.Printf("active modules: %v\n", node.ActiveModules())
	return nil
}
