// WSN demonstrates Kalis on a TinyOS/CTP wireless sensor network — the
// paper's reactivity experiment (§VI-C): the node starts with no
// detection modules active and no a-priori knowledge, discovers the
// multi-hop topology from the first CTP packets, activates the
// selective-forwarding module, and catches the attack from the very
// beginning. A second phase adds a replication attack under mobility
// to show dynamic module re-selection.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"kalis"
	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.New(3)
	sniffer := sim.AddSniffer("kalis", netsim.Position{X: 50, Y: 15})

	// The paper's 6-mote WSN: data every 3 s towards the base station.
	motes := devices.BuildWSNLine(sim, 6, 20)
	for _, m := range motes {
		m.Start(sim.Now().Add(time.Second))
	}

	node, err := kalis.New(kalis.WithNodeID("K1"))
	if err != nil {
		return err
	}
	defer node.Close()

	fmt.Printf("detection modules active at start: %s\n", detections(node))
	node.OnKnowledge(func(kg kalis.Knowgget) {
		if kg.Label == "Multihop" || kg.Label == "Mobility" {
			fmt.Printf("[%s] knowledge: %s = %s → active: %s\n",
				sim.Now().Format("15:04:05"), kg.Label, kg.Value, detections(node))
		}
	})
	node.OnAlert(func(a kalis.Alert) {
		fmt.Printf("[%s] ALERT %s suspects=%v — %s\n",
			a.Time.Format("15:04:05"), a.Attack, a.Suspects, a.Details)
	})
	sniffer.Subscribe(node.HandleCapture)

	// Phase 1: the first relay selectively drops during two episodes.
	sel := &attacks.SelectiveForwarding{Relay: motes[1], Rand: rand.New(rand.NewSource(9))}
	sel.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(45 * time.Second),
		Count: 2, Every: 75 * time.Second, Duration: 30 * time.Second,
	})
	sim.RunFor(4 * time.Minute)

	// Phase 2: the network becomes mobile and a replica of mote 4
	// appears; Kalis swaps replication techniques accordingly.
	fmt.Println("\n--- network becomes mobile; replica of mote 0x0004 joins ---")
	var movable []*netsim.Node
	for _, m := range motes[1:] {
		movable = append(movable, m.Node())
	}
	mover := netsim.NewJitterMover(sim, movable, 12)
	mover.SetActive(true)
	mover.Start(sim.Now().Add(time.Second), 2*time.Second)

	rep := &attacks.Replication{Clone: motes[3], Position: netsim.Position{X: 90, Y: 28}}
	rep.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(45 * time.Second),
		Count: 2, Every: 60 * time.Second, Duration: 30 * time.Second,
	})
	sim.RunFor(4 * time.Minute)

	fmt.Printf("\nfinal active detection modules: %s\n", detections(node))
	fmt.Printf("total alerts: %d\n", len(node.Alerts()))
	return nil
}

// detections filters the active module list down to detection modules.
func detections(node *kalis.Node) string {
	var out []string
	for _, name := range node.ActiveModules() {
		switch name {
		case "TopologyDiscoveryModule", "TrafficStatsModule", "MobilityAwarenessModule":
			continue
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return "(none)"
	}
	return strings.Join(out, ", ")
}
