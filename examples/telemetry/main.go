// Telemetry demo: attach a Kalis node to a simulated ICMP-flood
// scenario with the runtime-telemetry admin endpoint enabled, then
// scrape one Prometheus exposition over real HTTP and print the
// kalis_* metrics — the loop an operator's monitoring stack runs
// continuously against a deployed node.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"

	"kalis"
	"kalis/internal/eval"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	node, err := kalis.New(kalis.WithNodeID("K1"))
	if err != nil {
		return err
	}
	defer node.Close()

	srv, err := node.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("admin endpoint up at http://%s (metrics, metrics.json, healthz, debug/pprof)\n", srv.Addr())

	sc, _ := eval.ScenarioByName("icmp-flood")
	run := sc.Build(1, 3)
	run.Sniffer.Subscribe(node.HandleCapture)
	fmt.Printf("replaying %s...\n\n", sc.Name)
	run.Sim.Run(run.End)

	// One scrape, as Prometheus would do it.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("scrape of /metrics (kalis_* series):")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "kalis_") {
			fmt.Println(" ", line)
		}
	}
	return nil
}
