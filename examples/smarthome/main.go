// Smarthome reproduces the paper's Fig. 1 home-automation setting: a
// heterogeneous household (thermostat, bulb, camera, smart lock, dash
// button, a ZigBee hub with subs) monitored by one Kalis node deployed
// as "security-in-a-box", with the smart-firewall deployment filtering
// traffic from identified attackers at the router.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"kalis"
	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/ble"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.New(7)
	sniffer := sim.AddSniffer("kalis-box", netsim.Position{}) // all mediums
	cloudIP := netip.MustParseAddr("34.1.2.3")

	// Internet side: the cloud endpoint the devices talk to.
	cloud := sim.AddNode(&netsim.Node{Name: "cloud", IP: cloudIP, Pos: netsim.Position{X: 6}})
	devices.NewCloudPeer(cloud)

	// WiFi devices.
	nest := sim.AddNode(&netsim.Node{Name: "nest", IP: netip.MustParseAddr("192.168.1.11"), Pos: netsim.Position{Y: 14}})
	devices.NewThermostat(nest, cloudIP).Start(sim.Now().Add(2 * time.Second))
	arlo := sim.AddNode(&netsim.Node{Name: "arlo", IP: netip.MustParseAddr("192.168.1.13"), Pos: netsim.Position{Y: 23}})
	devices.NewCamera(arlo, cloudIP).Start(sim.Now().Add(3 * time.Second))
	victim := sim.AddNode(&netsim.Node{Name: "tv", IP: netip.MustParseAddr("192.168.1.10"), Pos: netsim.Position{X: 10}})
	devices.NewIPHost(victim)
	dashNode := sim.AddNode(&netsim.Node{Name: "dash", IP: netip.MustParseAddr("192.168.1.14"), Pos: netsim.Position{X: 14, Y: 9}})
	dash := devices.NewDashButton(dashNode, cloudIP)
	sim.After(20*time.Second, dash.Press)

	// Bluetooth: the smart lock advertising and operating.
	lockNode := sim.AddNode(&netsim.Node{Name: "august", Pos: netsim.Position{X: 7, Y: 5}})
	lock := devices.NewSmartLock(lockNode, ble.Address{0xa0, 1, 2, 3, 4, 5})
	lock.Start(sim.Now().Add(time.Second))
	sim.After(45*time.Second, lock.Operate)

	// The smart-lighting system: an Internet-connected hub
	// coordinating ZigBee bulbs (the hub-to-subs pattern of §II-A).
	hubNode := sim.AddNode(&netsim.Node{Name: "light-hub", Addr16: 0x0100, IP: netip.MustParseAddr("192.168.1.20"), Pos: netsim.Position{X: 20, Y: 4}})
	hub := devices.NewZigbeeHub(hubNode)
	for i := 0; i < 2; i++ {
		sub := sim.AddNode(&netsim.Node{
			Name:   fmt.Sprintf("bulb-%c", 'a'+i),
			Addr16: uint16(0x0200 + i),
			Pos:    netsim.Position{X: float64(24 + 4*i), Y: 6},
		})
		hub.AddSub(devices.NewZigbeeSub(sub))
	}
	hub.Start(sim.Now().Add(4 * time.Second))

	// A compromised device floods the TV with spoofed ICMP replies.
	attacker := sim.AddNode(&netsim.Node{Name: "compromised", IP: netip.MustParseAddr("192.168.1.66"), Pos: netsim.Position{X: 30}})
	devices.NewBulb(attacker).Start(sim.Now().Add(5 * time.Second))
	inj := &attacks.ICMPFlood{
		Attacker: attacker,
		Victim:   victim.IP,
		Spoofed: []netip.Addr{
			netip.MustParseAddr("192.168.1.11"),
			netip.MustParseAddr("192.168.1.13"),
		},
	}
	inj.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(60 * time.Second),
		Count: 3, Every: 30 * time.Second, Duration: 3 * time.Second,
	})

	// Kalis as security-in-a-box, plus the smart-firewall deployment.
	node, err := kalis.New(kalis.WithNodeID("home"))
	if err != nil {
		return err
	}
	defer node.Close()
	fw := node.NewFirewall(0.9)

	node.OnAlert(func(a kalis.Alert) {
		fmt.Printf("[%s] ALERT %s victim=%s suspects=%v\n",
			a.Time.Format("15:04:05"), a.Attack, a.Victim, a.Suspects)
	})
	sniffer.Subscribe(node.HandleCapture)
	// The router consults the firewall for every frame it would relay.
	sniffer.Subscribe(func(c *packet.Captured) {
		_ = fw.Filter(c) == kalis.FirewallDrop
	})

	sim.RunFor(3 * time.Minute)

	fmt.Printf("\nmediums observed: ")
	for _, kg := range node.Knowledge() {
		if len(kg.Label) > 8 && kg.Label[:8] == "Mediums." {
			fmt.Printf("%s ", kg.Label[8:])
		}
	}
	fmt.Println()
	fmt.Printf("firewall blocked identities: %v\n", fw.Blocked())
	passed, droppedN := fw.Stats()
	fmt.Printf("firewall verdicts: %d allowed, %d dropped\n", passed, droppedN)
	return nil
}
