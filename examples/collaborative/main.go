// Collaborative reproduces the knowledge-sharing experiment (§VI-D):
// two Kalis nodes watch two separate ZigBee network portions while
// colluding nodes B1 and B2 run a wormhole between them. Each node
// alone sees only half the picture (a blackhole / an unexplained
// traffic source); sharing collective knowggets over an encrypted UDP
// channel lets them correlate the halves into a wormhole detection.
package main

import (
	"fmt"
	"log"
	"time"

	"kalis"
	"kalis/internal/attacks"
	"kalis/internal/devices"
	"kalis/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := netsim.New(11)

	// Portion A (addresses 1..4) and portion B (addresses 6..8) are
	// far beyond radio range of each other.
	portionA := buildPortion(sim, 1, 0, "a", 4)
	buildPortion(sim, 6, 300, "b", 3)
	b2 := sim.AddNode(&netsim.Node{Name: "b2", Addr16: 9, Pos: netsim.Position{X: 330, Y: 6}})

	snifA := sim.AddSniffer("portA", netsim.Position{X: 33, Y: 15})
	snifB := sim.AddSniffer("portB", netsim.Position{X: 322, Y: 15})

	nodeA, err := kalis.New(kalis.WithNodeID("KA"))
	if err != nil {
		return err
	}
	defer nodeA.Close()
	nodeB, err := kalis.New(kalis.WithNodeID("KB"))
	if err != nil {
		return err
	}
	defer nodeB.Close()

	// Encrypted collective-knowledge channel over loopback UDP.
	if err := nodeA.EnableCollectiveUDP("127.0.0.1:46101", []string{"127.0.0.1:46102"}, "household-secret"); err != nil {
		return err
	}
	if err := nodeB.EnableCollectiveUDP("127.0.0.1:46102", []string{"127.0.0.1:46101"}, "household-secret"); err != nil {
		return err
	}
	nodeA.BeaconNow()
	nodeB.BeaconNow()
	time.Sleep(100 * time.Millisecond) // let UDP discovery settle
	fmt.Printf("node A discovered peers: %v\n", nodeA.CollectivePeers())
	fmt.Printf("node B discovered peers: %v\n", nodeB.CollectivePeers())

	report := func(who string) func(kalis.Alert) {
		return func(a kalis.Alert) {
			fmt.Printf("[%s] %s ALERT %s suspects=%v\n", a.Time.Format("15:04:05"), who, a.Attack, a.Suspects)
		}
	}
	nodeA.OnAlert(report("node-A"))
	nodeB.OnAlert(report("node-B"))
	snifA.Subscribe(nodeA.HandleCapture)
	snifB.Subscribe(nodeB.HandleCapture)

	// B1 (relay 0x0003 in portion A) swallows traffic and tunnels it
	// out-of-band to B2 (0x0009), which re-emits it in portion B.
	inj := &attacks.Wormhole{B1: portionA[2], B2: b2, B2Parent: 7}
	inj.Inject(sim, attacks.Schedule{
		Start: sim.Now().Add(60 * time.Second),
		Count: 2, Every: 75 * time.Second, Duration: 30 * time.Second,
	})

	// The collective layer runs on real time while the simulation runs
	// on virtual time; run the simulation in slices so UDP deliveries
	// interleave with simulated traffic.
	end := sim.Now().Add(4 * time.Minute)
	for sim.Now().Before(end) {
		sim.RunFor(5 * time.Second)
		// Flush each node's buffered collective updates: one gossip
		// round per simulated slice.
		nodeA.GossipNow()
		nodeB.GossipNow()
		time.Sleep(2 * time.Millisecond)
	}

	fmt.Println("\nwhat each node learned from its peer:")
	for _, kg := range nodeA.Knowledge() {
		if kg.Creator != "KA" {
			fmt.Printf("  node-A holds %s$%s@%s = %s\n", kg.Creator, kg.Label, kg.Entity, kg.Value)
		}
	}
	for _, kg := range nodeB.Knowledge() {
		if kg.Creator != "KB" {
			fmt.Printf("  node-B holds %s$%s@%s = %s\n", kg.Creator, kg.Label, kg.Entity, kg.Value)
		}
	}
	return nil
}

func buildPortion(sim *netsim.Sim, baseAddr uint16, originX float64, prefix string, count int) []*devices.Mote {
	motes := make([]*devices.Mote, 0, count)
	for i := 0; i < count; i++ {
		addr := baseAddr + uint16(i)
		n := sim.AddNode(&netsim.Node{
			Name:   fmt.Sprintf("%s-%d", prefix, i),
			Addr16: addr,
			Pos:    netsim.Position{X: originX + float64(i)*22},
		})
		parent := addr - 1
		if i == 0 {
			parent = addr
		}
		m := devices.NewMote(n, parent, i == 0)
		if i > 0 {
			m.ETX = uint16(i * 10)
		}
		m.Start(sim.Now().Add(time.Second))
		motes = append(motes, m)
	}
	return motes
}
