package kalis

// Regression tests for the sharded ingestion pipeline (internal/ingest
// + core wiring): per-source capture order must survive the trip
// through 8 shard rings and workers, and shutdown must account for
// every packet — delivered + dropped == enqueued, with zero accepted
// packets lost on drain (mirroring the event bus' own
// TestAsyncCloseAccounting). Run with -race: the ring's memory model
// claims are exactly what the race detector checks here.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/netsim"
	"kalis/internal/packet"
)

// seqRecorder collects (source → sequence numbers in arrival order)
// across all shard module instances. The lock serializes appends from
// different shard workers; within one source, all packets arrive via
// a single shard worker, so the recorded order is dispatch order.
type seqRecorder struct {
	mu   sync.Mutex
	seqs map[packet.NodeID][]int
}

func (r *seqRecorder) record(c *packet.Captured) {
	seq := int(c.Payload[0])<<8 | int(c.Payload[1])
	r.mu.Lock()
	r.seqs[c.Src] = append(r.seqs[c.Src], seq)
	r.mu.Unlock()
}

// recorderModule is a minimal always-on detection module; each shard
// gets its own instance (the factory runs once per shard), all feeding
// the shared recorder.
type recorderModule struct {
	rec   *seqRecorder
	delay time.Duration
}

func (m *recorderModule) Name() string                  { return "seq-recorder" }
func (m *recorderModule) Kind() module.Kind             { return module.KindDetection }
func (m *recorderModule) WatchLabels() []string         { return nil }
func (m *recorderModule) Required(*knowledge.Base) bool { return true }
func (m *recorderModule) Activate(*ModuleContext)       {}
func (m *recorderModule) Deactivate()                   {}
func (m *recorderModule) HandlePacket(c *packet.Captured) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	m.rec.record(c)
}

// seqCapture builds a synthetic capture whose payload encodes a
// per-source sequence number.
func seqCapture(src packet.NodeID, seq int) *Captured {
	return &Captured{
		Time:    netsim.Epoch.Add(time.Duration(seq) * time.Millisecond),
		Medium:  packet.MediumIEEE802154,
		Src:     src,
		Dst:     "sink",
		Payload: []byte{byte(seq >> 8), byte(seq)},
	}
}

func newRecorderNode(t testing.TB, rec *seqRecorder, delay time.Duration, opts ...Option) *Node {
	t.Helper()
	node, err := New(append([]Option{WithNodeID("K1"), WithoutDefaultModules()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	node.RegisterModule("seq-recorder", func(map[string]string) (Module, error) {
		return &recorderModule{rec: rec, delay: delay}, nil
	})
	if err := node.InstallModule("seq-recorder", nil); err != nil {
		t.Fatal(err)
	}
	return node
}

// TestShardedIngestOrdering replays an interleaved multi-source trace
// through 8 shards from 4 concurrent producers (each source owned by
// exactly one producer, as one capture goroutine owns a sniffer) and
// asserts every per-source sequence reaches the detector in capture
// order, with lossless accounting.
func TestShardedIngestOrdering(t *testing.T) {
	const (
		producers = 4
		perProd   = 16 // sources per producer
		per       = 200
	)
	rec := &seqRecorder{seqs: make(map[packet.NodeID][]int)}
	node := newRecorderNode(t, rec, 0,
		WithShards(8), WithIngestBlocking(), WithIngestRing(256))
	if got := node.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Round-robin across this producer's sources: maximally
			// interleaved from each shard ring's point of view.
			for seq := 0; seq < per; seq++ {
				for s := 0; s < perProd; s++ {
					src := packet.NodeID(fmt.Sprintf("node-%02d-%02d", p, s))
					node.HandleCapture(seqCapture(src, seq))
				}
			}
		}(p)
	}
	wg.Wait()
	node.DrainIngest()

	const total = producers * perProd * per
	st := node.IngestStats()
	if st.Enqueued != total || st.Accepted != total || st.Dropped != 0 {
		t.Fatalf("lossless ingest accounting: %+v, want %d accepted, 0 dropped", st, total)
	}
	if st.Delivered != st.Accepted {
		t.Fatalf("DrainIngest left packets queued: %+v", st)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if got := len(rec.seqs); got != producers*perProd {
		t.Fatalf("detector saw %d sources, want %d", got, producers*perProd)
	}
	for src, seqs := range rec.seqs {
		if len(seqs) != per {
			t.Fatalf("source %s: %d packets reached the detector, want %d", src, len(seqs), per)
		}
		for i, seq := range seqs {
			if seq != i {
				t.Fatalf("source %s out of capture order: position %d holds seq %d", src, i, seq)
			}
		}
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedIngestDrainAccounting overloads small rings behind a slow
// detector so the drop-newest policy engages, then closes the node and
// asserts the TestAsyncCloseAccounting invariant for the ingest layer:
// delivered + dropped == enqueued, and every *accepted* packet was
// delivered (drain-on-Stop loses nothing).
func TestShardedIngestDrainAccounting(t *testing.T) {
	const total = 2000
	rec := &seqRecorder{seqs: make(map[packet.NodeID][]int)}
	node := newRecorderNode(t, rec, 200*time.Microsecond,
		WithShards(2), WithIngestRing(64), WithIngestBatch(8))
	for i := 0; i < total; i++ {
		src := packet.NodeID(fmt.Sprintf("burst-%d", i%8))
		node.HandleCapture(seqCapture(src, i))
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	st := node.IngestStats()
	if st.Enqueued != total {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, total)
	}
	if st.Dropped == 0 {
		t.Fatal("64-slot rings behind a 200µs detector must drop under a 2000-packet burst")
	}
	if st.Accepted+st.Dropped != st.Enqueued {
		t.Fatalf("accounting broken: %+v", st)
	}
	if st.Delivered != st.Accepted {
		t.Fatalf("drain-on-Close lost accepted packets: %+v", st)
	}
	delivered := 0
	rec.mu.Lock()
	for _, seqs := range rec.seqs {
		delivered += len(seqs)
	}
	rec.mu.Unlock()
	if uint64(delivered) != st.Delivered {
		t.Fatalf("detector saw %d packets, stats claim %d", delivered, st.Delivered)
	}
}

// TestUnshardedStaysSynchronous pins the shards=1 contract: dispatch
// happens inside HandleCapture (no drain needed) and the ingest
// pipeline is absent from the accounting.
func TestUnshardedStaysSynchronous(t *testing.T) {
	rec := &seqRecorder{seqs: make(map[packet.NodeID][]int)}
	node := newRecorderNode(t, rec, 0)
	defer node.Close()
	if got := node.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1", got)
	}
	node.HandleCapture(seqCapture("solo", 0))
	rec.mu.Lock()
	n := len(rec.seqs["solo"])
	rec.mu.Unlock()
	if n != 1 {
		t.Fatalf("synchronous dispatch must complete within HandleCapture; detector saw %d packets", n)
	}
	if st := node.IngestStats(); st != (IngestStats{}) {
		t.Fatalf("unsharded node must report zero ingest stats, got %+v", st)
	}
}
