package kalis

// Chaos scenario: the ISSUE's scripted resilience drill. From one fixed
// seed, a fault scenario partitions the collective link, detonates a
// detection module mid-traffic, and bursts the knowledge topic — then
// the test asserts the pipeline degraded exactly as designed and fully
// recovered, with every transition visible in a real HTTP telemetry
// scrape:
//
//   - the panicking module is quarantined, probed and re-admitted
//     (kalis_module_panics_total, kalis_module_quarantined);
//   - the silent peer is evicted on TTL and fully re-synced on heal
//     (kalis_collective_peer_evictions_total);
//   - a transient send failure is retried, not dropped
//     (kalis_collective_send_retries_total);
//   - the knowledge burst coalesces per knowgget key and the detection
//     topic loses nothing under its Block policy
//     (kalis_bus_coalesced_total, kalis_bus_watermark_total, zero
//     detection drops);
//   - every injected fault is counted (kalis_fault_injected_total).

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kalis/internal/core"
	"kalis/internal/core/collective"
	"kalis/internal/core/event"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/fault"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// chaosBomb is a detection module that panics on every packet while
// armed — the crafted-frame crash the supervisor must contain.
type chaosBomb struct{ armed atomic.Bool }

func (b *chaosBomb) Name() string                  { return "chaos-bomb" }
func (b *chaosBomb) Kind() module.Kind             { return module.KindDetection }
func (b *chaosBomb) WatchLabels() []string         { return nil }
func (b *chaosBomb) Required(*knowledge.Base) bool { return true }
func (b *chaosBomb) Activate(*module.Context)      {}
func (b *chaosBomb) Deactivate()                   {}
func (b *chaosBomb) HandlePacket(*packet.Captured) {
	if b.armed.Load() {
		panic("chaos: crafted frame")
	}
}

// flakyOnce wraps a collective transport and fails the first unicast
// send with a transient error, so the retry policy has something real
// to recover from.
type flakyOnce struct {
	collective.Transport
	failed atomic.Bool
}

func (f *flakyOnce) Send(addr string, data []byte) error {
	if f.failed.CompareAndSwap(false, true) {
		return errors.New("chaos: transient link glitch")
	}
	return f.Transport.Send(addr, data)
}

// virtualClock drives the collective liveness machinery without wall
// time.
type virtualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *virtualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *virtualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// waitFor polls cond until it holds or the deadline passes. The chaos
// node runs an async bus, so state changes land shortly after the
// publishing call returns.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// scrape performs one HTTP scrape of the node's telemetry handler and
// returns the Prometheus text body.
func scrape(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample's value from a Prometheus text body.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(sample) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("sample %q not found in scrape", sample)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %q: %v", sample, err)
	}
	return v
}

func TestChaosScenario(t *testing.T) {
	const seed = 42

	// --- assembly ---------------------------------------------------
	k1, err := core.New(core.Config{NodeID: "K1", KnowledgeDriven: true, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k1.Close()
	k2, err := core.New(core.Config{NodeID: "K2", KnowledgeDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	defer k2.Close()

	bomb := &chaosBomb{}
	k1.Registry().Register("chaos-bomb", func(map[string]string) (module.Module, error) {
		return bomb, nil
	})
	if err := k1.Install("chaos-bomb", nil); err != nil {
		t.Fatal(err)
	}
	k1.Manager().SetSupervisor(module.SupervisorConfig{
		Backoff:      5 * time.Second,
		MaxBackoff:   time.Minute,
		ProbePackets: 3,
	})

	inj := fault.New(seed)
	inj.SetMetrics(fault.Metrics{
		Injected: k1.Telemetry().CounterVec("kalis_fault_injected_total", "kind",
			"Faults injected by the chaos harness, by kind."),
	})

	hub := collective.NewHub()
	flaky := &flakyOnce{Transport: hub.Endpoint("addr1")}
	ft1 := inj.WrapTransport(flaky, fault.LinkFaults{})
	if err := k1.EnableCollective(ft1, "chaos-secret"); err != nil {
		t.Fatal(err)
	}
	if err := k2.EnableCollective(hub.Endpoint("addr2"), "chaos-secret"); err != nil {
		t.Fatal(err)
	}
	clock := &virtualClock{t: netsim.Epoch}
	for _, n := range []*collective.Node{k1.Collective(), k2.Collective()} {
		n.SetClock(clock.now)
		n.SetPeerTTL(30 * time.Second)
		n.SetRetry(2, time.Millisecond)
	}

	// Pre-discovery collective knowledge gives k1's discovery sync a
	// payload; its first unicast hits the flaky link — exercising retry.
	k1.KB().PutCollective("EmergentSource", "0x0001", "1")
	k1.Collective().Beacon()
	k2.Collective().Beacon()
	if len(k1.Collective().Peers()) != 1 || len(k2.Collective().Peers()) != 1 {
		t.Fatal("collective discovery failed")
	}
	if _, retries, _ := k1.Collective().Resilience(); retries == 0 {
		t.Fatal("transient send failure was not retried")
	}

	raw := stack.BuildCTPData(5, 3, 5, 1, 0, 10, []byte{0x01, 0x01})
	base, err := stack.Decode(packet.MediumIEEE802154, raw)
	if err != nil {
		t.Fatal(err)
	}
	pktAt := func(d time.Duration) *packet.Captured {
		c := base.Clone()
		c.Time = netsim.Epoch.Add(d)
		return c
	}
	packetsSeen := func(n uint64) func() bool {
		return func() bool { p, _, _ := k1.Manager().Stats(); return p >= n }
	}

	// --- act I: partition the peer link, detonate the module --------
	inj.Run(fault.Scenario{Name: "partition+panic", Steps: []fault.Step{
		{Name: "partition addr1<->addr2", Do: func() { ft1.Partition("addr2") }},
		{Name: "arm module bomb", Do: func() { bomb.armed.Store(true) }},
	}})

	k1.HandleCapture(pktAt(0))
	waitFor(t, "bomb packet dispatched", packetsSeen(1))
	if h := k1.ModuleHealth()["chaos-bomb"]; h != "quarantined" {
		t.Fatalf("after panic: health = %q (want quarantined)", h)
	}
	if q := k1.QuarantinedModules(); len(q) != 1 || q[0] != "chaos-bomb" {
		t.Fatalf("quarantined = %v", q)
	}
	if lp := k1.Manager().LastPanic("chaos-bomb"); lp != "chaos: crafted frame" {
		t.Fatalf("last panic = %q", lp)
	}

	// Knowledge created while partitioned: the push cannot cross.
	k1.KB().PutCollective("SuspectBlackhole", "0x0007", "9")
	if _, ok := k2.KB().Get("K1$SuspectBlackhole@0x0007"); ok {
		t.Fatal("update crossed a partitioned link")
	}

	// --- act II: silence long enough for TTL eviction ---------------
	clock.advance(31 * time.Second)
	k1.Collective().Beacon() // sweeps: K2 has been silent past the TTL
	k2.Collective().Beacon()
	if evictions, _, _ := k1.Collective().Resilience(); evictions != 1 {
		t.Fatalf("evictions = %d (want 1)", evictions)
	}
	if peers := k1.Collective().Peers(); len(peers) != 0 {
		t.Fatalf("peers after eviction = %v", peers)
	}

	// --- act III: heal; the returning peer gets a full re-sync ------
	inj.Run(fault.Scenario{Name: "heal", Steps: []fault.Step{
		{Name: "heal addr1<->addr2", Do: ft1.Heal},
		{Name: "disarm module bomb", Do: func() { bomb.armed.Store(false) }},
	}})
	k1.Collective().Beacon()
	k2.Collective().Beacon()
	if _, ok := k2.KB().Get("K1$SuspectBlackhole@0x0007"); !ok {
		t.Fatal("knowledge created during the partition did not re-sync after heal")
	}

	// --- act IV: backoff elapses; probation; full re-admission ------
	for i := 0; i < 3; i++ {
		k1.HandleCapture(pktAt(6*time.Second + time.Duration(i)*time.Second))
	}
	waitFor(t, "probation packets dispatched", packetsSeen(4))
	waitFor(t, "module re-admission", func() bool {
		return k1.ModuleHealth()["chaos-bomb"] == "healthy"
	})
	if q := k1.QuarantinedModules(); len(q) != 0 {
		t.Fatalf("still quarantined after probation: %v", q)
	}

	// --- act V: knowledge burst coalesces, detection stays lossless -
	gate := make(chan struct{})
	var gateOnce sync.Once
	var kgSeen atomic.Uint64
	k1.OnKnowledge(func(knowledge.Knowgget) {
		kgSeen.Add(1)
		gateOnce.Do(func() { <-gate }) // park the worker: let the burst pile up
	})
	k1.KB().PutInt("ChaosBurst", 0)
	waitFor(t, "knowledge worker parked", func() bool { return kgSeen.Load() >= 1 })
	for i := 1; i <= 50; i++ {
		k1.KB().PutInt("ChaosBurst", i) // same knowgget key: coalesces
	}
	close(gate)
	waitFor(t, "burst drained", func() bool { return k1.Bus().QueueDepth() == 0 })
	if n := kgSeen.Load(); n >= 51 {
		t.Fatalf("knowledge burst was not coalesced: %d deliveries", n)
	}

	var alertsSeen atomic.Uint64
	k1.OnAlert(func(module.Alert) {
		alertsSeen.Add(1)
		time.Sleep(10 * time.Microsecond) // lag the consumer past the watermark
	})
	const alertBurst = event.AsyncQueueCap + 128
	go func() {
		for i := 0; i < alertBurst; i++ {
			k1.Bus().Publish(event.TopicDetection, module.Alert{Attack: "chaos-burst"})
		}
	}()
	waitFor(t, "lossless detection burst", func() bool {
		return alertsSeen.Load() == alertBurst
	})

	// --- epilogue: every transition visible in one real scrape ------
	body := scrape(t, k1.Telemetry().Handler())
	for sample, want := range map[string]float64{
		`kalis_module_panics_total{module="chaos-bomb"}`: 1,
		`kalis_module_quarantined`:                       0,
		`kalis_breaker_trips_total`:                      0,
		`kalis_collective_peer_evictions_total`:          1,
		`kalis_collective_peers`:                         1,
	} {
		if got := metricValue(t, body, sample); got != want {
			t.Errorf("scrape: %s = %v (want %v)", sample, got, want)
		}
	}
	for sample, min := range map[string]float64{
		`kalis_collective_send_retries_total`:          1,
		`kalis_bus_coalesced_total{topic="knowledge"}`: 1,
		`kalis_bus_watermark_total{topic="detection"}`: 1,
		`kalis_fault_injected_total{kind="partition"}`: 2, // Partition() + ≥1 blocked datagram
	} {
		if got := metricValue(t, body, sample); got < min {
			t.Errorf("scrape: %s = %v (want >= %v)", sample, got, min)
		}
	}
	if re := regexp.MustCompile(`(?m)^kalis_bus_drops_total\{topic="detection"\} (\d+)$`); true {
		if m := re.FindStringSubmatch(body); m != nil && m[1] != "0" {
			t.Errorf("detection topic dropped %s events under Block policy", m[1])
		}
	}
	if testing.Verbose() {
		fmt.Println(body)
	}
}
