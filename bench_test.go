package kalis

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out
// in DESIGN.md. Benches use a reduced episode count to keep -bench=.
// affordable; cmd/kalis-bench runs the full 50-episode configuration.
//
// Run with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/kalis-bench -exp all   # full-scale tables

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kalis/internal/core/datastore"
	"kalis/internal/core/event"
	"kalis/internal/core/knowledge"
	"kalis/internal/core/module"
	"kalis/internal/eval"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/proto/icmp"
	"kalis/internal/proto/stack"
	"kalis/internal/snortlike"
	"kalis/internal/taxonomy"
	"kalis/internal/trace"
)

// benchOpts keeps the per-iteration cost of the experiment benches
// manageable while preserving the result shapes.
var benchOpts = eval.Options{Seed: 1, Episodes: 6, SnortCommunityRules: 1000}

// --- one bench per table / figure ---

// BenchmarkTableI regenerates Table I (taxonomy by target).
func BenchmarkTableI(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		taxonomy.WriteTableI(&buf)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkFigure3 regenerates Figure 3 (taxonomy by features).
func BenchmarkFigure3(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		taxonomy.WriteFigure3(&buf)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkTableII regenerates Table II (effectiveness and performance
// of the traditional IDS, the Snort-like baseline, and Kalis across
// the §VI-B scenarios).
func BenchmarkTableII(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := eval.Table2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		eval.WriteTable2(&buf, res)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkFigure8 regenerates Figure 8 (Kalis vs traditional IDS
// across all eight attack scenarios).
func BenchmarkFigure8(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		eval.WriteFig8(&buf, res)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkReactivity regenerates the §VI-C reactivity experiment.
func BenchmarkReactivity(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := eval.Reactivity(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		eval.WriteReactivity(&buf, res)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkKnowledgeSharing regenerates the §VI-D wormhole experiment.
func BenchmarkKnowledgeSharing(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := eval.KnowledgeSharing(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		eval.WriteKnowledgeSharing(&buf, res)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkCountermeasure regenerates the §VI-B1 response-action
// comparison.
func BenchmarkCountermeasure(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := eval.Countermeasure(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		eval.WriteCountermeasure(&buf, res)
	}
	b.Log("\n" + buf.String())
}

// BenchmarkDeliveryImpact regenerates the countermeasure-as-network-
// functionality experiment (metric (iii) of §VI-B) on the
// adaptive-routing sinkhole.
func BenchmarkDeliveryImpact(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		res, err := eval.DeliveryImpact(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		eval.WriteDelivery(&buf, res)
	}
	b.Log("\n" + buf.String())
}

// --- per-scenario benches (one full IDS run per iteration) ---

func benchScenario(b *testing.B, name string) {
	sc, ok := eval.ScenarioByName(name)
	if !ok {
		b.Fatalf("unknown scenario %s", name)
	}
	for i := 0; i < b.N; i++ {
		res, err := eval.Execute(sc, eval.NewKalis("K1"), 1, 6)
		if err != nil {
			b.Fatal(err)
		}
		if res.Score.Detected == 0 {
			b.Fatalf("%s: nothing detected", name)
		}
	}
}

// BenchmarkScenarioICMPFlood runs the §VI-B1 scenario end to end.
func BenchmarkScenarioICMPFlood(b *testing.B) { benchScenario(b, "icmp-flood") }

// BenchmarkScenarioReplication runs the §VI-B2 scenario end to end.
func BenchmarkScenarioReplication(b *testing.B) { benchScenario(b, "replication") }

// BenchmarkScenarioSelectiveForwarding runs the §VI-C attack scenario.
func BenchmarkScenarioSelectiveForwarding(b *testing.B) {
	benchScenario(b, "selective-forwarding")
}

// --- ablation benches (design choices from DESIGN.md §5) ---

// BenchmarkAblationKnowledgeDriven measures the per-run cost of
// knowledge-driven module selection vs all-modules-on, on the same
// traffic — the resource argument of §III.
func BenchmarkAblationKnowledgeDriven(b *testing.B) {
	sc, _ := eval.ScenarioByName("icmp-flood")
	for _, mode := range []struct {
		name    string
		factory eval.Factory
	}{
		{"knowledge-driven", eval.NewKalis("K1")},
		{"all-modules-on", eval.NewTraditional()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var work, packets uint64
			for i := 0; i < b.N; i++ {
				res, err := eval.Execute(sc, mode.factory, 1, 6)
				if err != nil {
					b.Fatal(err)
				}
				work += res.Resources.WorkUnits
				packets += res.Resources.Packets
			}
			b.ReportMetric(float64(work)/float64(packets), "module-invocations/packet")
		})
	}
}

// BenchmarkAblationSnortRulesetSize sweeps the signature-IDS ruleset
// size: the linear per-packet cost Kalis' adaptive activation avoids.
func BenchmarkAblationSnortRulesetSize(b *testing.B) {
	src, dst := netip.MustParseAddr("192.168.1.5"), netip.MustParseAddr("34.2.2.2")
	raw := stack.BuildICMPEchoPayload(src, dst, icmp.TypeEchoReply, 1, 1, 64, stack.PingPayload())
	c, err := stack.Decode(packet.MediumWiFi, raw)
	if err != nil {
		b.Fatal(err)
	}
	c.Time = netsim.Epoch
	for _, n := range []int{100, 1000, 3000} {
		b.Run(fmt.Sprintf("rules-%d", n), func(b *testing.B) {
			rules, err := snortlike.DefaultRuleset(n)
			if err != nil {
				b.Fatal(err)
			}
			engine := snortlike.NewEngine(rules)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				engine.HandleCapture(c)
			}
		})
	}
}

// BenchmarkAblationKBLookup measures the Knowledge Base's key-encoding
// query paths (exact / creator prefix / entity suffix), §V.
func BenchmarkAblationKBLookup(b *testing.B) {
	kb := knowledge.NewBase("K1")
	for i := 0; i < 64; i++ {
		kb.PutEntity("SignalStrength", fmt.Sprintf("node-%02d", i), "-67")
		kb.Put(fmt.Sprintf("TrafficFrequency.Kind%02d", i), "0.5")
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := kb.Get("K1$SignalStrength@node-07"); !ok {
				b.Fatal("missing")
			}
		}
	})
	b.Run("prefix-local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := kb.QueryLocal(); len(got) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("suffix-entity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := kb.QueryEntity("node-07"); len(got) != 1 {
				b.Fatal("wrong count")
			}
		}
	})
}

// BenchmarkAblationWindowSize measures Data Store append cost across
// sliding-window sizes.
func BenchmarkAblationWindowSize(b *testing.B) {
	raw := stack.BuildCTPBeacon(5, 1, 10, 1)
	c, err := stack.Decode(packet.MediumIEEE802154, raw)
	if err != nil {
		b.Fatal(err)
	}
	c.Time = netsim.Epoch
	for _, size := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("window-%d", size), func(b *testing.B) {
			store := datastore.New(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.Append(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBusMode compares synchronous vs asynchronous event
// delivery (§V event-driven architecture).
func BenchmarkAblationBusMode(b *testing.B) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			bus := event.NewBus(async)
			sink := 0
			bus.Subscribe(event.TopicPacket, func(interface{}) { sink++ })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bus.Publish(event.TopicPacket, i)
			}
			bus.Close()
		})
	}
}

// BenchmarkProtocolDecode measures the Communication System's parsing
// path per medium.
func BenchmarkProtocolDecode(b *testing.B) {
	src, dst := netip.MustParseAddr("192.168.1.5"), netip.MustParseAddr("34.2.2.2")
	frames := map[string]struct {
		medium packet.Medium
		raw    []byte
	}{
		"ctp-data":  {packet.MediumIEEE802154, stack.BuildCTPData(5, 3, 5, 1, 0, 10, []byte{0x01, 0x01})},
		"zigbee":    {packet.MediumIEEE802154, stack.BuildZigbeeData(2, 1, 9, 1, 5, []byte("cmd"))},
		"rpl-dio":   {packet.MediumIEEE802154, stack.BuildRPLDIO(3, 1, 512, 1)},
		"tcp-wifi":  {packet.MediumWiFi, stack.BuildTCP(src, dst, 4000, 443, 0x12, 1, 1, 1, nil)},
		"icmp-wifi": {packet.MediumWiFi, stack.BuildICMPEcho(src, dst, 0, 1, 1, 64)},
	}
	for name, f := range frames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stack.Decode(f.medium, f.raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceRoundTrip measures trace write+read throughput, the
// record/replay substrate of the evaluation methodology.
func BenchmarkTraceRoundTrip(b *testing.B) {
	rec := &trace.Record{
		Time:   netsim.Epoch,
		Medium: packet.MediumIEEE802154,
		RSSI:   -61.5,
		Raw:    stack.BuildCTPData(5, 3, 5, 1, 0, 10, []byte{0x01, 0x01}),
	}
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		for j := 0; j < 16; j++ {
			if err := w.Write(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		recs, err := trace.ReadAll(&buf)
		if err != nil || len(recs) != 16 {
			b.Fatalf("read %d, err %v", len(recs), err)
		}
	}
}

// BenchmarkKalisPerPacket measures the steady-state per-packet cost of
// a fully warmed knowledge-driven node on mixed WSN traffic.
func BenchmarkKalisPerPacket(b *testing.B) {
	node, err := New(WithNodeID("K1"))
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	var caps []*Captured
	for i := 0; i < 64; i++ {
		raw := stack.BuildCTPData(uint16(2+i%4), 1, uint16(2+i%4), uint8(i), 0, 10, []byte{0x01, uint8(i)})
		c, err := stack.Decode(packet.MediumIEEE802154, raw)
		if err != nil {
			b.Fatal(err)
		}
		c.Time = netsim.Epoch.Add(time.Duration(i) * 100 * time.Millisecond)
		c.RSSI = -60 - float64(i%4)
		caps = append(caps, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.HandleCapture(caps[i%len(caps)])
	}
}

// BenchmarkKalisThroughput measures aggregate packets/sec through the
// sharded ingestion pipeline at 1, 2, 4 and 8 shards on mixed WSN
// traffic from 64 distinct sources. shards=1 is the synchronous
// in-line dispatch path (single caller — the sync contract); shards>1
// enqueues from GOMAXPROCS parallel producers with lossless
// backpressure and drains before the clock stops, so ns/op covers
// capture-to-detector delivery of every packet. Scaling beyond 1x
// needs real cores: on a 1-CPU runner all shard counts collapse to
// roughly the shards=1 figure plus handoff overhead.
func BenchmarkKalisThroughput(b *testing.B) {
	mkCaps := func(b *testing.B) []*Captured {
		var caps []*Captured
		for i := 0; i < 256; i++ {
			// 64 distinct 802.15.4 sources (2..65) so the shard hash
			// spreads work; payload varies to defeat trivial dedup.
			src := uint16(2 + i%64)
			raw := stack.BuildCTPData(src, 1, src, uint8(i), 0, 10, []byte{0x01, uint8(i)})
			c, err := stack.Decode(packet.MediumIEEE802154, raw)
			if err != nil {
				b.Fatal(err)
			}
			c.Time = netsim.Epoch.Add(time.Duration(i) * 10 * time.Millisecond)
			c.RSSI = -60 - float64(i%4)
			caps = append(caps, c)
		}
		return caps
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			node, err := New(WithNodeID("K1"), WithShards(shards), WithIngestBlocking())
			if err != nil {
				b.Fatal(err)
			}
			defer node.Close()
			caps := mkCaps(b)
			// Warm up knowledge-driven activation outside the timer.
			for i := 0; i < len(caps); i++ {
				node.HandleCapture(caps[i])
			}
			node.DrainIngest()
			b.ResetTimer()
			if shards <= 1 {
				for i := 0; i < b.N; i++ {
					node.HandleCapture(caps[i%len(caps)])
				}
			} else {
				var next atomic.Uint64
				b.RunParallel(func(pb *testing.PB) {
					// Stagger producers across the capture set so the
					// shard rings see all 64 sources concurrently.
					i := int(next.Add(1)-1) * 64
					for pb.Next() {
						node.HandleCapture(caps[i%len(caps)])
						i++
					}
				})
				node.DrainIngest()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
			if st := node.IngestStats(); shards > 1 && st.Dropped != 0 {
				b.Fatalf("blocking mode must not drop: %+v", st)
			}
		})
	}
}

// benchBomb panics on its first packet and stays quarantined for the
// rest of the run (every bench capture carries the same timestamp, so
// the backoff never elapses).
type benchBomb struct{ fired bool }

func (b *benchBomb) Name() string                  { return "bench-bomb" }
func (b *benchBomb) Kind() module.Kind             { return module.KindDetection }
func (b *benchBomb) WatchLabels() []string         { return nil }
func (b *benchBomb) Required(*knowledge.Base) bool { return true }
func (b *benchBomb) Activate(*ModuleContext)       {}
func (b *benchBomb) Deactivate()                   {}
func (b *benchBomb) HandlePacket(*packet.Captured) {
	if !b.fired {
		b.fired = true
		panic("bench: first packet")
	}
}

// BenchmarkKalisPerPacketSupervised measures the steady-state
// per-packet cost with the module supervisor actively engaged: one
// installed module panics on the first packet and is quarantined, so
// every subsequent packet pays the supervisor's revival scan on top of
// the healthy dispatch path. The benchdiff gate on this bench bounds
// the supervision overhead (acceptance: ≤25% over the unsupervised
// baseline, target ≲5%).
func BenchmarkKalisPerPacketSupervised(b *testing.B) {
	node, err := New(WithNodeID("K1"))
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	node.RegisterModule("bench-bomb", func(map[string]string) (Module, error) {
		return &benchBomb{}, nil
	})
	if err := node.InstallModule("bench-bomb", nil); err != nil {
		b.Fatal(err)
	}
	var caps []*Captured
	for i := 0; i < 64; i++ {
		raw := stack.BuildCTPData(uint16(2+i%4), 1, uint16(2+i%4), uint8(i), 0, 10, []byte{0x01, uint8(i)})
		c, err := stack.Decode(packet.MediumIEEE802154, raw)
		if err != nil {
			b.Fatal(err)
		}
		// A fixed timestamp keeps the quarantine backoff from elapsing:
		// the supervisor scans for revival on every packet, the
		// worst-case degraded steady state.
		c.Time = netsim.Epoch
		c.RSSI = -60 - float64(i%4)
		caps = append(caps, c)
	}
	node.HandleCapture(caps[0]) // detonate: bench-bomb panics, is quarantined
	if q := node.QuarantinedModules(); len(q) != 1 || q[0] != "bench-bomb" {
		b.Fatalf("quarantined = %v (want [bench-bomb])", q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.HandleCapture(caps[i%len(caps)])
	}
}

// sanity keeps the bench file honest if scenario names drift.
func TestBenchScenarioNamesExist(t *testing.T) {
	for _, name := range []string{"icmp-flood", "replication", "selective-forwarding"} {
		if _, ok := eval.ScenarioByName(name); !ok {
			t.Errorf("scenario %q not found", name)
		}
	}
	if !strings.Contains(snortlike.CustomRules, "sid:1000001") {
		t.Error("custom rules drifted")
	}
}
