package kalis

// Crash-during-attack drill: the durable-state counterpart of
// TestChaosScenario. A persisted Kalis node monitors a WSN
// selective-forwarding attack — detection knowledge-gated on the
// learned Multihop topology; mid-attack the harness kills its host
// dirty —
// fault.CrashNodeDirty revokes the host and tears the KB journal
// mid-record, exactly as a power cut during an append would. The node
// is then rebooted twice, as two rival histories:
//
//   - warm: reopened on the torn state dir — recovery must classify
//     truncated, keep the verified prefix, and come back knowing the
//     network;
//   - cold: a fresh state dir — the paper's baseline, re-learning the
//     network from nothing while the attack continues.
//
// The drill asserts the warm restart re-detects the ongoing attack
// measurably sooner than the cold one, with every claim backed by a
// live telemetry scrape (kalis_persist_recoveries_total,
// kalis_persist_snapshot_total, kalis_fault_injected_total).

import (
	"fmt"
	"testing"
	"time"

	"kalis/internal/core"
	"kalis/internal/core/module"
	"kalis/internal/eval"
	"kalis/internal/fault"
	"kalis/internal/netsim"
	"kalis/internal/packet"
	"kalis/internal/persist"
)

// recordScenario runs the attack simulation once with a plain
// collector attached and returns every overheard frame in capture
// order — the drill replays slices of this record to each node
// under test, so all three histories see identical traffic.
func recordScenario(t *testing.T, name string, seed int64, episodes int) []*packet.Captured {
	t.Helper()
	sc, ok := eval.ScenarioByName(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	run := sc.Build(seed, episodes)
	var frames []*packet.Captured
	run.Sniffer.Subscribe(func(c *packet.Captured) { frames = append(frames, c) })
	run.Sim.Run(run.End)
	if len(frames) == 0 {
		t.Fatal("scenario produced no traffic")
	}
	return frames
}

// persistedNode builds a synchronous knowledge-driven node with
// durable state in dir and collects its alerts.
func persistedNode(t *testing.T, dir string) (*core.Kalis, *[]module.Alert) {
	t.Helper()
	k, err := core.New(core.Config{
		NodeID:          "K1",
		KnowledgeDriven: true,
		InstallAll:      true,
		StateDir:        dir,
		PersistInterval: 2 * time.Second, // capture-clock seconds
	})
	if err != nil {
		t.Fatal(err)
	}
	var alerts []module.Alert
	k.Manager().OnAlert(func(a module.Alert) { alerts = append(alerts, a) })
	return k, &alerts
}

// firstAlertAfter returns the earliest alert time strictly after cut.
func firstAlertAfter(alerts []module.Alert, cut time.Time) (time.Time, bool) {
	var first time.Time
	for _, a := range alerts {
		if !a.Time.After(cut) {
			continue
		}
		if first.IsZero() || a.Time.Before(first) {
			first = a.Time
		}
	}
	return first, !first.IsZero()
}

func TestCrashRecoveryDrill(t *testing.T) {
	const seed = 42
	frames := recordScenario(t, "selective-forwarding/wsn", seed, 6)

	// --- act I: a persisted node monitors the attack ----------------
	dirA := t.TempDir()
	nodeA, alertsA := persistedNode(t, dirA)
	if got := nodeA.Persistence().Outcome(); got != persist.OutcomeCold {
		t.Fatalf("fresh state dir outcome = %s (want cold)", got)
	}

	crashAt := -1
	for i, c := range frames {
		nodeA.HandleCapture(c.Clone())
		if len(*alertsA) > 0 && i > len(frames)/3 {
			crashAt = i // mid-attack, past the first detection
			break
		}
	}
	if crashAt < 0 {
		t.Fatal("scenario never triggered a first detection")
	}
	tCrash := frames[crashAt].Time

	// --- act II: the power cut, mid-journal-write -------------------
	// The IDS host lives in a simulation of its own; CrashNodeDirty
	// revokes it on the virtual clock and runs the dirty hook — the
	// torn write. Node A is abandoned without Close: no shutdown
	// flush, no final snapshot, exactly like a dying process.
	inj := fault.New(seed)
	inj.SetMetrics(fault.Metrics{
		Injected: nodeA.Telemetry().CounterVec("kalis_fault_injected_total", "kind",
			"Faults injected by the chaos harness, by kind."),
	})
	hostSim := netsim.New(seed)
	hostSim.AddNode(&netsim.Node{Name: "ids-host"})
	crashed := false
	inj.CrashNodeDirty(hostSim, "ids-host", 10*time.Millisecond, 0, func() {
		if err := persist.Tear(dirA, 3); err != nil {
			t.Errorf("tear journal: %v", err)
		}
		crashed = true
	})
	hostSim.RunFor(20 * time.Millisecond)
	if !crashed {
		t.Fatal("CrashNodeDirty never fired")
	}
	if !hostSim.Node("ids-host").Revoked() {
		t.Fatal("crashed host still on the air")
	}
	bodyA := scrape(t, nodeA.Telemetry().Handler())
	if got := metricValue(t, bodyA, `kalis_fault_injected_total{kind="crashdirty"}`); got != 1 {
		t.Errorf("crashdirty injections = %v (want 1)", got)
	}
	if got := metricValue(t, bodyA, `kalis_persist_snapshot_total`); got < 1 {
		t.Errorf("no snapshot compaction before the crash (%v)", got)
	}

	// --- act III: two rival reboots ---------------------------------
	nodeW, alertsW := persistedNode(t, dirA) // warm: the torn state dir
	defer nodeW.Close()
	if got := nodeW.Persistence().Outcome(); got != persist.OutcomeTruncated {
		t.Fatalf("warm reboot outcome = %s (want truncated)", got)
	}
	if nodeW.KB().Len() == 0 {
		t.Fatal("warm reboot recovered an empty Knowledge Base")
	}

	nodeC, alertsC := persistedNode(t, t.TempDir()) // cold: from nothing
	defer nodeC.Close()
	if got := nodeC.Persistence().Outcome(); got != persist.OutcomeCold {
		t.Fatalf("cold reboot outcome = %s (want cold)", got)
	}

	// The attack continues: both reboots watch the identical tail.
	for _, c := range frames[crashAt+1:] {
		nodeW.HandleCapture(c.Clone())
		nodeC.HandleCapture(c.Clone())
	}

	// --- act IV: time-to-redetection, warm vs cold ------------------
	warmAt, warmOK := firstAlertAfter(*alertsW, tCrash)
	coldAt, coldOK := firstAlertAfter(*alertsC, tCrash)
	if !warmOK {
		t.Fatal("warm reboot never re-detected the attack")
	}
	if !coldOK {
		t.Fatal("cold reboot never re-detected the attack")
	}
	ttrWarm := warmAt.Sub(tCrash)
	ttrCold := coldAt.Sub(tCrash)
	t.Logf("time-to-redetection: warm %v, cold %v (crash at %v into capture)",
		ttrWarm, ttrCold, tCrash.Sub(frames[0].Time))
	if ttrWarm >= ttrCold {
		t.Errorf("warm restart not faster: warm %v vs cold %v", ttrWarm, ttrCold)
	}

	// --- epilogue: recovery ladder visible in live scrapes ----------
	bodyW := scrape(t, nodeW.Telemetry().Handler())
	if got := metricValue(t, bodyW, `kalis_persist_recoveries_total{outcome="truncated"}`); got != 1 {
		t.Errorf("warm scrape: recoveries{truncated} = %v (want 1)", got)
	}
	bodyC := scrape(t, nodeC.Telemetry().Handler())
	if got := metricValue(t, bodyC, `kalis_persist_recoveries_total{outcome="cold"}`); got != 1 {
		t.Errorf("cold scrape: recoveries{cold} = %v (want 1)", got)
	}
	if testing.Verbose() {
		fmt.Printf("crash drill: warm TTR %v vs cold TTR %v\n", ttrWarm, ttrCold)
	}
}
