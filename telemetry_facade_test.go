package kalis

// Tests for the facade's runtime-telemetry surface: the registry
// accessor, the admin handler mounted under httptest, and the firewall
// metric wiring.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

func TestTelemetryHandlerScrape(t *testing.T) {
	node, err := New(WithNodeID("K1"))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	fw := node.NewFirewall(0.5)
	driveBlackhole(t, node)
	if len(node.Alerts()) == 0 {
		t.Fatal("scenario raised no alerts")
	}
	// Route one frame from the blackhole suspect through the firewall.
	c := capOf(t, packet.MediumIEEE802154, stack.BuildCTPData(2, 1, 2, 1, 1, 20, []byte{0x01}), tEpoch, -50)
	if fw.Filter(c) != FirewallDrop {
		t.Error("suspect frame not dropped")
	}

	srv := httptest.NewServer(node.TelemetryHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`kalis_alerts_total{attack="blackhole"}`,
		"kalis_firewall_dropped_total 1",
		"kalis_firewall_blocklist 1",
		"kalis_packets_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	snap := node.Telemetry().Snapshot()
	if v := snap["kalis_packets_total"].Value.(uint64); v == 0 {
		t.Error("kalis_packets_total = 0 after traffic")
	}
}
