module kalis

go 1.22
