package kalis

import (
	"testing"
	"time"

	"kalis/internal/packet"
	"kalis/internal/proto/stack"
)

// TestFacadeCollectiveUDP runs two Kalis nodes with encrypted UDP
// knowledge sharing on loopback: node A learns a blackhole locally and
// its collective knowgget must reach node B.
func TestFacadeCollectiveUDP(t *testing.T) {
	nodeA, err := New(WithNodeID("KA"))
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := New(WithNodeID("KB"))
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	if err := nodeA.EnableCollectiveUDP("127.0.0.1:46201", []string{"127.0.0.1:46202"}, "s3cret"); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.EnableCollectiveUDP("127.0.0.1:46202", []string{"127.0.0.1:46201"}, "s3cret"); err != nil {
		t.Fatal(err)
	}
	nodeA.BeaconNow()
	nodeB.BeaconNow()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodeA.CollectivePeers()) == 1 && len(nodeB.CollectivePeers()) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
		nodeA.BeaconNow()
		nodeB.BeaconNow()
	}
	if got := nodeA.CollectivePeers(); len(got) != 1 || got[0] != "KB" {
		t.Fatalf("node A peers = %v", got)
	}

	// Drive a blackhole at node A; the SuspectBlackhole knowgget is
	// collective and must appear at node B.
	driveBlackhole(t, nodeA)
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if hasRemoteSuspect(nodeB) {
			return
		}
		// The suspicion is buffered until node A's next gossip round.
		nodeA.GossipNow()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("collective knowgget never reached node B")
}

func hasRemoteSuspect(n *Node) bool {
	for _, kg := range n.Knowledge() {
		if kg.Creator == "KA" && kg.Label == "SuspectBlackhole" {
			return true
		}
	}
	return false
}

func TestFacadeCollectiveUDPBadAddr(t *testing.T) {
	node, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.EnableCollectiveUDP("999.999.999.999:1", nil, "x"); err == nil {
		t.Error("bad listen address accepted")
	}
	// Without a collective layer these are safe no-ops.
	if node.CollectivePeers() != nil {
		t.Error("peers without collective layer")
	}
	node.BeaconNow()
}

func TestFacadeResponder(t *testing.T) {
	node, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	r := node.NewResponder(DefaultResponsePolicy(2))
	var isolated []NodeID
	r.Isolate = func(id NodeID) error { isolated = append(isolated, id); return nil }

	driveBlackhole(t, node)
	if len(isolated) != 1 || isolated[0] != "0x0002" {
		t.Errorf("isolated = %v", isolated)
	}
	if audit := r.Audit(); len(audit) == 0 {
		t.Error("no audit entries")
	}
}

func TestFacadeAsyncEvents(t *testing.T) {
	node, err := New(WithAsyncEvents())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		node.HandleCapture(capOf(t, packet.MediumIEEE802154,
			stack.BuildCTPData(3, 2, 3, uint8(i), 1, 20, []byte{0x01, uint8(i)}),
			tEpoch.Add(time.Duration(i)*3*time.Second), -65))
	}
	if err := node.Close(); err != nil { // drains
		t.Fatal(err)
	}
	if len(node.Alerts()) == 0 {
		t.Error("async pipeline produced no alerts")
	}
}
