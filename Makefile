# Convenience targets for the Kalis reproduction.

GO ?= go

.PHONY: all build test race bench vet fmt experiments examples telemetry-demo clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/kalis-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/wsn
	$(GO) run ./examples/collaborative

# Run a node with the runtime-telemetry admin endpoint enabled and
# perform one HTTP scrape of /metrics against it.
telemetry-demo:
	$(GO) run ./examples/telemetry

clean:
	$(GO) clean ./...
