# Convenience targets for the Kalis reproduction.

GO ?= go

.PHONY: all build test race bench benchdiff vet fmt lint lint-json callgraph chaos crash-demo fuzz-short experiments examples telemetry-demo flow-demo scale-demo fleet-demo clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole tree under the race detector, matching CI. The simulator
# suites push this well past the default bench budget, hence -timeout.
race:
	$(GO) test -race -timeout 10m ./...

bench:
	$(GO) test -bench=. -benchmem

# Compare the hot-path benchmarks against bench_baseline.json; fails on
# a >25% ns/op regression. Re-record with:
#   go run ./cmd/benchdiff -update -benchtime 0.5s
benchdiff:
	$(GO) run ./cmd/benchdiff -benchtime 0.5s

vet:
	$(GO) vet ./...

# Fault-scenario suite under the race detector: the scripted chaos
# drill (partition + module panic + knowledge burst, see chaos_test.go),
# the crash-recovery drill (dirty crash mid-journal-write, warm vs cold
# time-to-redetection, see crash_drill_test.go), plus the
# fault-injection, supervision, collective-resilience and persistence
# packages.
chaos:
	$(GO) test -race -timeout 5m -run 'TestChaosScenario|TestCrashRecoveryDrill' -v .
	$(GO) test -race -timeout 5m ./internal/fault/ ./internal/core/module/ ./internal/core/collective/ ./internal/persist/

# The crash-recovery drill alone, verbose: tears the KB journal
# mid-record, reboots warm (torn state dir) vs cold (fresh dir) against
# the same recorded attack tail, and prints both times-to-redetection.
crash-demo:
	$(GO) test -run TestCrashRecoveryDrill -v .

# Short native-fuzz passes: the collective receive path (truncated /
# corrupted / replayed datagrams must never panic or taint the KB) and
# the durable-state loaders (arbitrary snapshot/journal bytes must
# never panic or partially apply).
fuzz-short:
	$(GO) test -fuzz=FuzzNodeReceive -fuzztime=30s -run '^$$' ./internal/core/collective/
	$(GO) test -fuzz=FuzzSnapshotLoad -fuzztime=30s -run '^$$' ./internal/persist/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=30s -run '^$$' ./internal/persist/

# Kalis-specific static analysis (see DESIGN.md "Static analysis &
# invariants"): simulated-clock discipline, named bus topics, hot-path
# allocation/formatting/blocking bans over the devirtualized call
# graph, lock-order and packet-taint checks, panic policy, discarded
# errors. The committed baseline (normally empty) supports gradual
# adoption when a new rule lands with pre-existing findings.
lint:
	$(GO) run ./cmd/kalislint -baseline lint_baseline.json ./...

# Findings as JSON (the baseline file format).
lint-json:
	$(GO) run ./cmd/kalislint -json ./...

# The devirtualized packet-path call graph, as pinned by the golden
# test (internal/lint/callgraph_test.go).
callgraph:
	$(GO) run ./cmd/kalislint -callgraph HandlePacket

fmt:
	gofmt -l -w .

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/kalis-bench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smarthome
	$(GO) run ./examples/wsn
	$(GO) run ./examples/collaborative

# Run a node with the runtime-telemetry admin endpoint enabled and
# perform one HTTP scrape of /metrics against it.
telemetry-demo:
	$(GO) run ./examples/telemetry

# Replay a scenario and print the flow records the node exports as
# flows expire — the per-flow feature pipeline end to end.
flow-demo:
	$(GO) run ./examples/flowexport

# Sharded-ingestion scaling table: sweep shard counts up to NumCPU,
# scrape each node's live /metrics for delivered packets, drops and
# batch sizes, and print shards vs throughput (EXPERIMENTS.md "Scaling").
scale-demo:
	$(GO) run ./cmd/kalis-bench -exp scale

# Fleet-scale collective: anti-entropy digest gossip vs legacy snapshot
# push on 1k-10k simulated nodes, with live kalis_collective_* scrapes,
# a partition convergence curve and the loss/partition fault matrix
# (EXPERIMENTS.md "Fleet scaling").
fleet-demo:
	$(GO) run ./cmd/kalis-bench -exp fleet

clean:
	$(GO) clean ./...
