package kalis

// Scalability by locality (§IV-B4): "because of the locality of the
// knowledge acquired by each Kalis node, different IDS nodes can load
// different (and locally-optimal) sets of modules depending on their
// surroundings, thus allowing the system to scale to arbitrarily large
// networks just by means of adding new IDS nodes".

import (
	"net/netip"
	"sort"
	"testing"
	"time"

	"kalis/internal/devices"
	"kalis/internal/netsim"
)

func TestLocalityDrivenModuleSets(t *testing.T) {
	sim := netsim.New(31)

	// Portion A: a WiFi smart home around (0,0).
	snifA := sim.AddSniffer("A", netsim.Position{})
	cloud := sim.AddNode(&netsim.Node{Name: "cloud", IP: netip.MustParseAddr("34.1.2.3"), Pos: netsim.Position{X: 6}})
	devices.NewCloudPeer(cloud)
	thermo := sim.AddNode(&netsim.Node{Name: "nest", IP: netip.MustParseAddr("192.168.1.11"), Pos: netsim.Position{X: 12}})
	devices.NewThermostat(thermo, cloud.IP).Start(sim.Now().Add(time.Second))
	bulb := sim.AddNode(&netsim.Node{Name: "bulb", IP: netip.MustParseAddr("192.168.1.12"), Pos: netsim.Position{X: 16}})
	devices.NewBulb(bulb).Start(sim.Now().Add(2 * time.Second))

	// Portion B: a multi-hop CTP WSN far away, around (500,0).
	snifB := sim.AddSniffer("B", netsim.Position{X: 550, Y: 15})
	for i := 0; i < 4; i++ {
		addr := uint16(0x40 + i)
		n := sim.AddNode(&netsim.Node{
			Name:   "wsn-" + string(rune('a'+i)),
			Addr16: addr,
			Pos:    netsim.Position{X: 500 + float64(i)*20},
		})
		parent := addr - 1
		if i == 0 {
			parent = addr
		}
		m := devices.NewMote(n, parent, i == 0)
		m.Start(sim.Now().Add(time.Second))
	}

	nodeA, err := New(WithNodeID("KA"))
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := New(WithNodeID("KB"))
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()
	snifA.Subscribe(nodeA.HandleCapture)
	snifB.Subscribe(nodeB.HandleCapture)

	sim.RunFor(3 * time.Minute)

	setA := detectionSet(nodeA)
	setB := detectionSet(nodeB)
	t.Logf("node A (smart home): %v", setA)
	t.Logf("node B (WSN):        %v", setB)

	// Locally-optimal and different: A runs the IP-side detectors, B
	// the WSN-side ones; neither wastes modules on the other's world.
	for _, want := range []string{"ICMPFloodModule", "SYNFloodModule"} {
		if !setA[want] {
			t.Errorf("node A missing %s", want)
		}
		if setB[want] {
			t.Errorf("node B wastes %s on a non-IP portion", want)
		}
	}
	for _, want := range []string{"SelectiveForwardingModule", "BlackholeModule", "SinkholeModule"} {
		if !setB[want] {
			t.Errorf("node B missing %s", want)
		}
		if setA[want] {
			t.Errorf("node A wastes %s on a single-hop IP portion", want)
		}
	}
}

func detectionSet(n *Node) map[string]bool {
	sensing := map[string]bool{
		"TopologyDiscoveryModule": true, "TrafficStatsModule": true, "MobilityAwarenessModule": true,
	}
	out := map[string]bool{}
	names := n.ActiveModules()
	sort.Strings(names)
	for _, name := range names {
		if !sensing[name] {
			out[name] = true
		}
	}
	return out
}
